package config

import (
	"errors"
	"fmt"
	"sync"

	"cardirect/internal/core"
	"cardirect/internal/geom"
	"cardirect/internal/index"
)

// Tracked couples an Image with a core.RelationStore and a maintained
// index.Live R-tree, kept in sync with the image's edit methods through the
// Watcher hooks: an AddRegion/RemoveRegion/RenameRegion/SetRegionGeometry
// call updates the document, delta-updates the relation store (only the
// touched row and column recompute) and moves the R-tree entry — no O(n²)
// resweep, no index rebuild. This is the paper's interactive annotation
// loop (§4) with an O(n) edit path.
//
// The watcher callbacks cannot reject an edit, so a failure while applying
// a delta (it cannot arise from geometry the edit methods accept, since
// they validate first — but a store fed out-of-band could diverge) is
// latched into Err and every later edit is ignored until the caller
// re-syncs.
//
// Concurrency: Tracked carries an RWMutex so many readers overlap one
// writer — the contract cardirectd relies on. Mutations must go through
// Tracked's own edit methods (AddRegion, RemoveRegion, RenameRegion,
// SetRegionGeometry, Materialize), which take the write side; document
// reads go through View, which takes the read side. The maintained
// RelationStore has its own internal lock and stays safe to query directly
// at any time. Editing the underlying Image directly remains possible (the
// watcher keeps firing) but forfeits the concurrency guarantee — it is
// only safe single-threaded, as in the seed's interactive examples.
type Tracked struct {
	mu    sync.RWMutex
	img   *Image
	store *core.RelationStore
	idx   *index.Live
	err   error
}

// Track validates the image and builds the coupled relation store and live
// index over its current regions (region ids are the store names), then
// subscribes to the image's edits. Call Close to unsubscribe.
func Track(img *Image, opt core.StoreOptions) (*Tracked, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	regions := make([]core.NamedRegion, len(img.Regions))
	for i := range img.Regions {
		regions[i] = core.NamedRegion{Name: img.Regions[i].ID, Region: img.Regions[i].Geometry()}
	}
	store, err := core.NewRelationStore(regions, opt)
	if err != nil {
		return nil, err
	}
	idx, err := index.NewLive(regions)
	if err != nil {
		return nil, err
	}
	tr := &Tracked{img: img, store: store, idx: idx}
	img.Watch(tr)
	return tr, nil
}

// TrackSeeded is Track for documents whose materialised Relation list is
// trusted: when the relations cover every ordered pair (with parseable pct
// attributes when opt.Pct is set), the relation store is seeded from them
// instead of recomputing all pairs — the recovery fast path of the
// persistence subsystem, which only ever feeds back snapshots the store
// itself wrote. An incomplete, stale or unparseable relation list silently
// falls back to the computing path; the returned flag reports which path
// was taken. Do not use on hand-edited documents: seeded relations are
// served as-is, wrong values included.
func TrackSeeded(img *Image, opt core.StoreOptions) (*Tracked, bool, error) {
	if err := img.Validate(); err != nil {
		return nil, false, err
	}
	seed, ok := seedFromRelations(img, opt.Pct)
	if !ok {
		tr, err := Track(img, opt)
		return tr, false, err
	}
	regions := make([]core.NamedRegion, len(img.Regions))
	for i := range img.Regions {
		regions[i] = core.NamedRegion{Name: img.Regions[i].ID, Region: img.Regions[i].Geometry()}
	}
	store, err := core.NewRelationStoreSeeded(regions, seed, opt)
	if errors.Is(err, core.ErrBadSeed) {
		tr, err := Track(img, opt)
		return tr, false, err
	}
	if err != nil {
		return nil, false, err
	}
	idx, err := index.NewLive(regions)
	if err != nil {
		return nil, false, err
	}
	// The seed has been consumed into the store; drop the O(n²) relation
	// list from the live image, or every subsequent edit pays a full scan
	// of it (Image edit methods filter the touched region's entries).
	img.Relations = img.Relations[:0]
	tr := &Tracked{img: img, store: store, idx: idx}
	img.Watch(tr)
	return tr, true, nil
}

// seedFromRelations converts the materialised Relation list into a store
// seed, reporting false when the list cannot possibly cover all pairs or an
// entry does not parse.
func seedFromRelations(img *Image, withPct bool) (core.StoreSeed, bool) {
	n := len(img.Regions)
	want := n * (n - 1)
	if len(img.Relations) != want {
		return core.StoreSeed{}, false
	}
	seed := core.StoreSeed{Pairs: make([]core.PairRelation, 0, want)}
	if withPct {
		seed.Pcts = make([]core.PairPercent, 0, want)
	}
	for _, rel := range img.Relations {
		r, err := core.ParseRelation(rel.Type)
		if err != nil {
			return core.StoreSeed{}, false
		}
		seed.Pairs = append(seed.Pairs, core.PairRelation{
			Primary: rel.Primary, Reference: rel.Reference, Relation: r,
		})
		if withPct {
			if rel.Pct == "" {
				return core.StoreSeed{}, false
			}
			m, err := ParsePct(rel.Pct)
			if err != nil {
				return core.StoreSeed{}, false
			}
			seed.Pcts = append(seed.Pcts, core.PairPercent{
				Primary: rel.Primary, Reference: rel.Reference, Matrix: m,
			})
		}
	}
	return seed, true
}

// Store returns the maintained relation store.
func (tr *Tracked) Store() *core.RelationStore { return tr.store }

// Index returns the maintained live R-tree index.
func (tr *Tracked) Index() *index.Live { return tr.idx }

// Image returns the tracked document.
func (tr *Tracked) Image() *Image { return tr.img }

// Err returns the first delta-application failure, or nil. A non-nil value
// means the store and index no longer reflect the image and must be rebuilt
// with a fresh Track.
func (tr *Tracked) Err() error {
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	return tr.err
}

// Close unsubscribes from the image's edits; the store and index stay
// readable at their final state.
func (tr *Tracked) Close() {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.img.Unwatch(tr)
}

// View runs fn with the tracked document under the read lock, so it can
// overlap other readers but never an edit. fn must not mutate the image or
// retain it past the call; any error is returned verbatim. The maintained
// store and live index may be used inside fn (their reads nest safely
// under the read lock), which is how the HTTP layer serves directional
// selections and queries against a consistent document snapshot.
func (tr *Tracked) View(fn func(img *Image) error) error {
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	return fn(tr.img)
}

// AddRegion is Image.AddRegion under the write lock: the document, relation
// store and live index all advance before any reader observes the new
// region. A previously latched delta failure short-circuits.
func (tr *Tracked) AddRegion(id, name, color string, g geom.Region) error {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.err != nil {
		return tr.err
	}
	if err := tr.img.AddRegion(id, name, color, g); err != nil {
		return err
	}
	return tr.err
}

// RemoveRegion is Image.RemoveRegion under the write lock.
func (tr *Tracked) RemoveRegion(id string) error {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.err != nil {
		return tr.err
	}
	if err := tr.img.RemoveRegion(id); err != nil {
		return err
	}
	return tr.err
}

// RenameRegion is Image.RenameRegion under the write lock.
func (tr *Tracked) RenameRegion(oldID, newID string) error {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.err != nil {
		return tr.err
	}
	if err := tr.img.RenameRegion(oldID, newID); err != nil {
		return err
	}
	return tr.err
}

// SetRegionGeometry is Image.SetRegionGeometry under the write lock.
func (tr *Tracked) SetRegionGeometry(id string, g geom.Region) error {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.err != nil {
		return tr.err
	}
	if err := tr.img.SetRegionGeometry(id, g); err != nil {
		return err
	}
	return tr.err
}

// BulkRegion is one region of a bulk ingest (Tracked.BulkAddRegions).
type BulkRegion struct {
	ID, Name, Color string
	Geometry        geom.Region
}

// BulkAddRegions ingests many regions as one edit: every region is
// validated first (empty or duplicate id, invalid geometry — the same
// checks as Image.AddRegion — leave everything unchanged), then the
// relation store advances through ONE batched recomputation
// (core.RelationStore.AddBulk) instead of per-region 2(n−1) deltas, and
// the document and R-tree follow. The document mutation is applied
// directly rather than through Image.AddRegion, so Image watchers other
// than the Tracked itself are NOT notified per region — the store and
// index are updated here, batched.
func (tr *Tracked) BulkAddRegions(regions []BulkRegion) error {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.err != nil {
		return tr.err
	}
	if len(regions) == 0 {
		return nil
	}
	batch := make(map[string]bool, len(regions))
	named := make([]core.NamedRegion, len(regions))
	for i, r := range regions {
		if r.ID == "" {
			return fmt.Errorf("config: empty region id")
		}
		if batch[r.ID] || tr.img.FindRegion(r.ID) != nil {
			return fmt.Errorf("config: region %q: %w", r.ID, ErrDuplicateRegion)
		}
		batch[r.ID] = true
		if err := r.Geometry.Validate(); err != nil {
			return fmt.Errorf("config: region %q: %w", r.ID, err)
		}
		named[i] = core.NamedRegion{Name: r.ID, Region: r.Geometry}
	}
	// Store first: it is the only step that can still reject (e.g. zero
	// area under StoreOptions.Pct), and a rejection must leave the
	// document untouched.
	if err := tr.store.AddBulk(named); err != nil {
		return err
	}
	for _, r := range regions {
		reg := Region{ID: r.ID, Name: r.Name, Color: r.Color}
		reg.SetGeometry(r.Geometry)
		tr.img.Regions = append(tr.img.Regions, reg)
		tr.fail(tr.idx.Add(r.ID, r.Geometry))
	}
	return tr.err
}

// fail latches the first delta failure.
func (tr *Tracked) fail(err error) {
	if tr.err == nil && err != nil {
		tr.err = err
	}
}

// RegionAdded implements Watcher.
func (tr *Tracked) RegionAdded(id string, g geom.Region) {
	if tr.err != nil {
		return
	}
	if err := tr.store.Add(id, g); err != nil {
		tr.fail(fmt.Errorf("config: tracking add %q: %w", id, err))
		return
	}
	tr.fail(tr.idx.Add(id, g))
}

// RegionRemoved implements Watcher.
func (tr *Tracked) RegionRemoved(id string) {
	if tr.err != nil {
		return
	}
	if err := tr.store.Remove(id); err != nil {
		tr.fail(fmt.Errorf("config: tracking remove %q: %w", id, err))
		return
	}
	tr.fail(tr.idx.Remove(id))
}

// RegionRenamed implements Watcher.
func (tr *Tracked) RegionRenamed(oldID, newID string) {
	if tr.err != nil {
		return
	}
	if err := tr.store.Rename(oldID, newID); err != nil {
		tr.fail(fmt.Errorf("config: tracking rename %q: %w", oldID, err))
		return
	}
	tr.fail(tr.idx.Rename(oldID, newID))
}

// RegionGeometryChanged implements Watcher.
func (tr *Tracked) RegionGeometryChanged(id string, g geom.Region) {
	if tr.err != nil {
		return
	}
	if err := tr.store.SetGeometry(id, g); err != nil {
		tr.fail(fmt.Errorf("config: tracking geometry %q: %w", id, err))
		return
	}
	tr.fail(tr.idx.SetGeometry(id, g))
}

// Materialize writes the store's cached relations into the image's Relation
// list — the store-backed replacement for ComputeRelations after an edit
// sequence, costing a copy instead of an O(n²) recompute. The list stays in
// the live image and every subsequent edit pays a full scan of it; encoders
// should prefer WithMaterialized, which strips it again.
func (tr *Tracked) Materialize(withPct bool) error {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.materializeLocked(withPct)
}

// WithMaterialized runs f over the image with the store's cached relations
// materialised into it, then strips the relation list again before
// returning. The list is O(n²) and the Image edit methods filter it on
// every mutation, so a live image must not keep it between encodes — a
// snapshot taken on a 900-region world would otherwise slow every later
// edit by two orders of magnitude.
func (tr *Tracked) WithMaterialized(withPct bool, f func(*Image) error) error {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if err := tr.materializeLocked(withPct); err != nil {
		return err
	}
	err := f(tr.img)
	tr.img.Relations = tr.img.Relations[:0]
	return err
}

func (tr *Tracked) materializeLocked(withPct bool) error {
	if tr.err != nil {
		return tr.err
	}
	pairs := tr.store.Pairs()
	var pcts []core.PairPercent
	if withPct {
		var err error
		pcts, err = tr.store.PctPairs()
		if err != nil {
			return err
		}
	}
	tr.img.Relations = tr.img.Relations[:0]
	for i, pr := range pairs {
		entry := Relation{Type: pr.Relation.String(), Primary: pr.Primary, Reference: pr.Reference}
		if withPct {
			entry.Pct = encodePct(pcts[i].Matrix)
		}
		tr.img.Relations = append(tr.img.Relations, entry)
	}
	return nil
}
