package config

import (
	"testing"

	"cardirect/internal/core"
)

// FuzzParsePct checks the pct-attribute decoder never panics on arbitrary
// input and that whatever it accepts round-trips bit-exactly through
// encodePct — the invariant seeded recovery depends on: a percent matrix
// written to a snapshot is read back as exactly the cached value.
func FuzzParsePct(f *testing.F) {
	var m core.PercentMatrix
	for i, t := range core.Tiles() {
		m.Set(t, float64(i)*100/9)
	}
	f.Add(encodePct(m))
	f.Add("0;0;0;0;0;0;0;0;0")
	f.Add("100;0;0;0;0;0;0;0;0")
	f.Add("1e-300;2.5;33.333333333333336;0;0;0;0;0;64.1")
	f.Add("nope")
	f.Add(";;;;;;;;")
	f.Add("NaN;0;0;0;0;0;0;0;0")
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParsePct(s)
		if err != nil {
			return
		}
		enc := encodePct(m)
		back, err := ParsePct(enc)
		if err != nil {
			t.Fatalf("encodePct produced unparseable %q: %v", enc, err)
		}
		if back != m {
			t.Fatalf("round-trip changed matrix: %v -> %q -> %v", m, enc, back)
		}
		// And a second encode is byte-stable.
		if enc2 := encodePct(back); enc2 != enc {
			t.Fatalf("encodePct not stable: %q vs %q", enc, enc2)
		}
	})
}

// FuzzParseImage checks the XML loader never panics and that accepted,
// valid documents survive a save/load roundtrip structurally.
func FuzzParseImage(f *testing.F) {
	valid, err := Greece().Bytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(valid))
	f.Add(`<?xml version="1.0"?><Image name="x"><Region id="r"><Polygon id="p"><Edge x="0" y="0"/><Edge x="1" y="0"/><Edge x="0" y="1"/></Polygon></Region></Image>`)
	f.Add("<Image></Image>")
	f.Add("not xml")
	f.Add(`<Image><Region id="a"/><Region id="a"/></Image>`)
	f.Fuzz(func(t *testing.T, s string) {
		img, err := Parse([]byte(s))
		if err != nil {
			return
		}
		if err := img.Validate(); err != nil {
			return // parsed but structurally invalid: fine
		}
		data, err := img.Bytes()
		if err != nil {
			t.Fatalf("save of valid document failed: %v", err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("reload failed: %v", err)
		}
		if len(back.Regions) != len(img.Regions) || len(back.Relations) != len(img.Relations) {
			t.Fatalf("roundtrip changed structure: %d/%d vs %d/%d regions/relations",
				len(back.Regions), len(back.Relations), len(img.Regions), len(img.Relations))
		}
	})
}
