package config

import "testing"

// FuzzParseImage checks the XML loader never panics and that accepted,
// valid documents survive a save/load roundtrip structurally.
func FuzzParseImage(f *testing.F) {
	valid, err := Greece().Bytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(valid))
	f.Add(`<?xml version="1.0"?><Image name="x"><Region id="r"><Polygon id="p"><Edge x="0" y="0"/><Edge x="1" y="0"/><Edge x="0" y="1"/></Polygon></Region></Image>`)
	f.Add("<Image></Image>")
	f.Add("not xml")
	f.Add(`<Image><Region id="a"/><Region id="a"/></Image>`)
	f.Fuzz(func(t *testing.T, s string) {
		img, err := Parse([]byte(s))
		if err != nil {
			return
		}
		if err := img.Validate(); err != nil {
			return // parsed but structurally invalid: fine
		}
		data, err := img.Bytes()
		if err != nil {
			t.Fatalf("save of valid document failed: %v", err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("reload failed: %v", err)
		}
		if len(back.Regions) != len(img.Regions) || len(back.Relations) != len(img.Relations) {
			t.Fatalf("roundtrip changed structure: %d/%d vs %d/%d regions/relations",
				len(back.Regions), len(back.Relations), len(img.Regions), len(img.Relations))
		}
	})
}
