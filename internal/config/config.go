// Package config implements the CARDIRECT configuration store of §4 of the
// paper: an annotated image with named, coloured regions (each a set of
// polygons), persisted in the XML format defined by the paper's DTD:
//
//	<!ELEMENT Image (Region+, Relation*)>
//	<!ATTLIST Image name CDATA #IMPLIED file CDATA #IMPLIED>
//	<!ELEMENT Region (Polygon*)>
//	<!ATTLIST Region id ID #REQUIRED name CDATA #IMPLIED color CDATA #IMPLIED>
//	<!ELEMENT Polygon (Edge, Edge, Edge, Edge*)>
//	<!ATTLIST Polygon id CDATA #REQUIRED>
//	<!ELEMENT Edge EMPTY>
//	<!ATTLIST Edge x CDATA #REQUIRED y CDATA #REQUIRED>
//	<!ELEMENT Relation EMPTY>
//	<!ATTLIST Relation type CDATA #REQUIRED
//	          primary IDREF #REQUIRED reference IDREF #REQUIRED>
//
// The package loads and saves such documents, validates them (unique region
// ids, at least three edges per polygon as the DTD demands, IDREF
// integrity, simple positive-area polygons) and (re)computes the stored
// Relation elements with the paper's two algorithms. The percentage matrix
// is carried in an optional pct attribute — an extension the DTD's
// #IMPLIED-friendly shape allows without breaking conforming readers.
package config

import (
	"encoding/xml"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"cardirect/internal/core"
	"cardirect/internal/geom"
)

// Image is a CARDIRECT configuration: an underlying image file annotated
// with regions and (optionally materialised) pairwise relations.
type Image struct {
	XMLName   xml.Name   `xml:"Image"`
	Name      string     `xml:"name,attr,omitempty"`
	File      string     `xml:"file,attr,omitempty"`
	Regions   []Region   `xml:"Region"`
	Relations []Relation `xml:"Relation"`

	// watchers are notified after every successful edit-method mutation;
	// unexported, so encoding/xml round-trips ignore it.
	watchers []Watcher
}

// Watcher observes the edit methods of an Image: each callback fires after
// the corresponding mutation succeeded, with the already-validated new state.
// Because Image.Validate and the edit methods guarantee simple positive-area
// polygons, downstream Prepare of a delivered geometry cannot fail — the
// callbacks therefore return nothing, and observers that maintain fallible
// state (a RelationStore, an R-tree) record their first error for the owner
// to inspect (see Tracked.Err).
type Watcher interface {
	RegionAdded(id string, g geom.Region)
	RegionRemoved(id string)
	RegionRenamed(oldID, newID string)
	RegionGeometryChanged(id string, g geom.Region)
}

// Watch subscribes a watcher to this image's edit notifications.
func (img *Image) Watch(w Watcher) {
	img.watchers = append(img.watchers, w)
}

// Unwatch removes a previously subscribed watcher (comparison by identity).
func (img *Image) Unwatch(w Watcher) {
	for i, x := range img.watchers {
		if x == w {
			img.watchers = append(img.watchers[:i], img.watchers[i+1:]...)
			return
		}
	}
}

// Region is a named, coloured REG* region given as a set of polygons.
type Region struct {
	ID       string    `xml:"id,attr"`
	Name     string    `xml:"name,attr,omitempty"`
	Color    string    `xml:"color,attr,omitempty"`
	Polygons []Polygon `xml:"Polygon"`
}

// Polygon is one simple polygon of a region, as a list of vertices (the
// DTD's Edge elements carry the vertex coordinates; consecutive vertices
// form the polygon's edges, in clockwise order as the paper prescribes).
type Polygon struct {
	ID    string `xml:"id,attr"`
	Edges []Edge `xml:"Edge"`
}

// Edge is a polygon vertex (see Polygon).
type Edge struct {
	X float64 `xml:"x,attr"`
	Y float64 `xml:"y,attr"`
}

// Relation materialises one computed direction relation between two regions.
type Relation struct {
	Type      string `xml:"type,attr"`
	Primary   string `xml:"primary,attr"`
	Reference string `xml:"reference,attr"`
	// Pct optionally carries the percentage matrix as nine
	// semicolon-separated numbers in tile order B;S;SW;W;NW;N;NE;E;SE
	// (extension attribute, absent in pure qualitative configurations).
	Pct string `xml:"pct,attr,omitempty"`
}

// Geometry converts the region's polygon list into the geometry
// representation used by the algorithms.
func (r *Region) Geometry() geom.Region {
	out := make(geom.Region, 0, len(r.Polygons))
	for _, p := range r.Polygons {
		poly := make(geom.Polygon, 0, len(p.Edges))
		for _, e := range p.Edges {
			poly = append(poly, geom.Pt(e.X, e.Y))
		}
		out = append(out, poly)
	}
	return out
}

// SetGeometry replaces the region's polygons with the given geometry,
// assigning sequential polygon ids prefixed by the region id.
func (r *Region) SetGeometry(g geom.Region) {
	r.Polygons = r.Polygons[:0]
	for i, p := range g {
		cp := Polygon{ID: fmt.Sprintf("%s-p%d", r.ID, i)}
		for _, v := range p {
			cp.Edges = append(cp.Edges, Edge{X: v.X, Y: v.Y})
		}
		r.Polygons = append(r.Polygons, cp)
	}
}

// FindRegion returns the region with the given id, or nil.
func (img *Image) FindRegion(id string) *Region {
	for i := range img.Regions {
		if img.Regions[i].ID == id {
			return &img.Regions[i]
		}
	}
	return nil
}

// RegionIDs returns all region ids in document order.
func (img *Image) RegionIDs() []string {
	out := make([]string, len(img.Regions))
	for i := range img.Regions {
		out[i] = img.Regions[i].ID
	}
	return out
}

// Validate checks the structural rules of the DTD and the geometric
// prerequisites of the algorithms: at least one region; unique region ids;
// every polygon with at least three Edge elements (the DTD's
// (Edge, Edge, Edge, Edge*)); every Relation's primary/reference referencing
// declared ids; and every polygon a valid simple positive-area ring.
func (img *Image) Validate() error {
	if len(img.Regions) == 0 {
		return fmt.Errorf("config: image has no regions (DTD requires Region+)")
	}
	seen := map[string]bool{}
	for i := range img.Regions {
		r := &img.Regions[i]
		if r.ID == "" {
			return fmt.Errorf("config: region %d has empty id", i)
		}
		if seen[r.ID] {
			return fmt.Errorf("config: duplicate region id %q", r.ID)
		}
		seen[r.ID] = true
		if len(r.Polygons) == 0 {
			return fmt.Errorf("config: region %q has no polygons", r.ID)
		}
		for j := range r.Polygons {
			if n := len(r.Polygons[j].Edges); n < 3 {
				return fmt.Errorf("config: region %q polygon %d has %d edges, DTD requires ≥3", r.ID, j, n)
			}
		}
		if err := r.Geometry().Validate(); err != nil {
			return fmt.Errorf("config: region %q: %w", r.ID, err)
		}
	}
	for i, rel := range img.Relations {
		if !seen[rel.Primary] {
			return fmt.Errorf("config: relation %d references unknown primary %q", i, rel.Primary)
		}
		if !seen[rel.Reference] {
			return fmt.Errorf("config: relation %d references unknown reference %q", i, rel.Reference)
		}
		if _, err := core.ParseRelation(rel.Type); err != nil {
			return fmt.Errorf("config: relation %d: %w", i, err)
		}
	}
	return nil
}

// ComputeRelations recomputes the materialised Relation list for every
// ordered pair of distinct regions using the batch engine (grids and edge
// tables built once per region, MBB pruning); when withPct is set it also
// runs Compute-CDR% and stores the percentage matrix in the pct attribute.
// Results are ordered (primary, reference) by region id, exactly as the
// batch engine emits them.
func (img *Image) ComputeRelations(withPct bool) error {
	regions := make([]core.NamedRegion, len(img.Regions))
	for i := range img.Regions {
		regions[i] = core.NamedRegion{Name: img.Regions[i].ID, Region: img.Regions[i].Geometry()}
	}
	ps, err := core.PrepareAll(regions)
	if err != nil {
		return fmt.Errorf("config: computing relations: %w", err)
	}
	pairs, _, err := core.ComputeAllPairsPrepared(ps, core.BatchOptions{})
	if err != nil {
		return fmt.Errorf("config: computing relations: %w", err)
	}
	// Both batch engines emit the same name-sorted (primary, reference)
	// order over the same prepared set, so the quantitative results zip with
	// the qualitative ones by index.
	var pcts []core.PairPercent
	if withPct {
		pcts, _, err = core.ComputeAllPairsPctPrepared(ps, core.BatchOptions{})
		if err != nil {
			return fmt.Errorf("config: computing percentages: %w", err)
		}
	}
	img.Relations = img.Relations[:0]
	for i, pr := range pairs {
		entry := Relation{Type: pr.Relation.String(), Primary: pr.Primary, Reference: pr.Reference}
		if withPct {
			entry.Pct = encodePct(pcts[i].Matrix)
		}
		img.Relations = append(img.Relations, entry)
	}
	return nil
}

// RelationBetween returns the materialised relation of primary p versus
// reference q, or false when not present.
func (img *Image) RelationBetween(p, q string) (Relation, bool) {
	for _, r := range img.Relations {
		if r.Primary == p && r.Reference == q {
			return r, true
		}
	}
	return Relation{}, false
}

// encodePct serialises a percentage matrix in tile order. The shortest
// round-trippable float formatting makes ParsePct(encodePct(m)) == m
// bit-exact — the property the persistence subsystem's seeded recovery and
// FuzzParsePct rely on.
func encodePct(m core.PercentMatrix) string {
	parts := make([]string, 0, core.NumTiles)
	for _, t := range core.Tiles() {
		parts = append(parts, strconv.FormatFloat(m.Get(t), 'g', -1, 64))
	}
	return strings.Join(parts, ";")
}

// ParsePct decodes a pct attribute back into a percentage matrix.
func ParsePct(s string) (core.PercentMatrix, error) {
	var m core.PercentMatrix
	parts := strings.Split(s, ";")
	if len(parts) != core.NumTiles {
		return m, fmt.Errorf("config: pct has %d fields, want %d", len(parts), core.NumTiles)
	}
	for i, t := range core.Tiles() {
		v, err := strconv.ParseFloat(parts[i], 64)
		if err != nil {
			return m, fmt.Errorf("config: pct field %d: %w", i, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return m, fmt.Errorf("config: pct field %d: non-finite value %q", i, parts[i])
		}
		m.Set(t, v)
	}
	return m, nil
}

// Load parses a CARDIRECT XML document.
func Load(r io.Reader) (*Image, error) {
	var img Image
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&img); err != nil {
		return nil, fmt.Errorf("config: decoding image: %w", err)
	}
	return &img, nil
}

// Parse parses a CARDIRECT XML document from bytes.
func Parse(data []byte) (*Image, error) {
	return Load(strings.NewReader(string(data)))
}

// Save writes the image as indented XML with the standard header. Regions
// are emitted in sorted-id order and relations sorted by (primary,
// reference, type), so saving the same logical document always produces the
// same bytes — snapshot files are byte-stable and diffable across runs
// regardless of edit history. The in-memory document is not reordered.
func (img *Image) Save(w io.Writer) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	out := Image{XMLName: img.XMLName, Name: img.Name, File: img.File}
	out.Regions = append([]Region(nil), img.Regions...)
	sort.SliceStable(out.Regions, func(i, j int) bool { return out.Regions[i].ID < out.Regions[j].ID })
	out.Relations = append([]Relation(nil), img.Relations...)
	sort.SliceStable(out.Relations, func(i, j int) bool {
		a, b := &out.Relations[i], &out.Relations[j]
		if a.Primary != b.Primary {
			return a.Primary < b.Primary
		}
		if a.Reference != b.Reference {
			return a.Reference < b.Reference
		}
		return a.Type < b.Type
	})
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(&out); err != nil {
		return fmt.Errorf("config: encoding image: %w", err)
	}
	return enc.Close()
}

// Bytes renders the image document as XML bytes.
func (img *Image) Bytes() ([]byte, error) {
	var sb strings.Builder
	if err := img.Save(&sb); err != nil {
		return nil, err
	}
	return []byte(sb.String()), nil
}
