// Package workload generates synthetic REG* regions for tests, examples and
// the experiment harness: random star-shaped and convex polygons with exact
// edge counts (for the linear-scaling experiments E4–E7), multi-component
// regions, country-like regions with islands and enclave holes (the
// motivating shapes of the paper's §2: "countries are made up of separations
// … and holes"), and reference/primary region pairs at controlled relative
// placements.
//
// All generation is driven by an explicit seed, so every experiment is
// reproducible run-to-run.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"cardirect/internal/geom"
)

// Generator produces deterministic random workloads.
type Generator struct {
	rng *rand.Rand
}

// New returns a generator seeded with the given value; equal seeds produce
// identical workloads.
func New(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// Float in [lo, hi).
func (g *Generator) uniform(lo, hi float64) float64 {
	return lo + g.rng.Float64()*(hi-lo)
}

// StarPolygon returns a simple polygon with exactly n ≥ 3 edges: vertices at
// strictly increasing jittered angles around (cx, cy) with radii drawn from
// [rMin, rMax], normalised clockwise. Star-shapedness about the centre
// guarantees simplicity.
func (g *Generator) StarPolygon(cx, cy, rMin, rMax float64, n int) geom.Polygon {
	if n < 3 {
		panic(fmt.Sprintf("workload: StarPolygon needs n ≥ 3, got %d", n))
	}
	if rMin <= 0 || rMax < rMin {
		panic(fmt.Sprintf("workload: bad radius range [%g, %g]", rMin, rMax))
	}
	p := make(geom.Polygon, n)
	for i := 0; i < n; i++ {
		th := 2 * math.Pi * (float64(i) + 0.1 + 0.8*g.rng.Float64()) / float64(n)
		r := g.uniform(rMin, rMax)
		p[i] = geom.Pt(cx+r*math.Cos(th), cy+r*math.Sin(th))
	}
	return p.Clockwise()
}

// smoothStar returns a coastline-like simple polygon with exactly n ≥ 3
// edges: a low-frequency harmonic radius profile around (cx, cy) bounded to
// [0.37r, 0.98r] with only tiny per-vertex jitter. Unlike StarPolygon, whose
// independent per-vertex radii put high-frequency noise on every edge, the
// boundary here is smooth at the vertex scale, so densely-digitised regions
// respond to error-bounded simplification the way real administrative
// geometry does (thousands of raw vertices, dozens of significant ones).
// Star-shapedness about the centre (radius is always positive, angles
// strictly increasing) guarantees simplicity.
func (g *Generator) smoothStar(cx, cy, r float64, n int) geom.Polygon {
	if n < 3 {
		panic(fmt.Sprintf("workload: smoothStar needs n ≥ 3, got %d", n))
	}
	const harmonics = 5
	amp := make([]float64, harmonics)
	phase := make([]float64, harmonics)
	sum := 0.0
	for k := 0; k < harmonics; k++ {
		amp[k] = g.uniform(0, 0.3/float64(k+1))
		phase[k] = g.uniform(0, 2*math.Pi)
		sum += amp[k]
	}
	if sum > 0.3 {
		for k := range amp {
			amp[k] *= 0.3 / sum
		}
	}
	p := make(geom.Polygon, n)
	for i := 0; i < n; i++ {
		th := 2 * math.Pi * (float64(i) + 0.1 + 0.8*g.rng.Float64()) / float64(n)
		rad := 0.675
		for k := 0; k < harmonics; k++ {
			rad += amp[k] * math.Cos(float64(k+1)*th+phase[k])
		}
		rad += g.uniform(-0.001, 0.001)
		p[i] = geom.Pt(cx+r*rad*math.Cos(th), cy+r*rad*math.Sin(th))
	}
	return p.Clockwise()
}

// ConvexPolygon returns a convex polygon with exactly n ≥ 3 edges inscribed
// in the circle of radius r around (cx, cy): jittered angles, fixed radius.
func (g *Generator) ConvexPolygon(cx, cy, r float64, n int) geom.Polygon {
	if n < 3 {
		panic(fmt.Sprintf("workload: ConvexPolygon needs n ≥ 3, got %d", n))
	}
	p := make(geom.Polygon, n)
	for i := 0; i < n; i++ {
		th := 2 * math.Pi * (float64(i) + 0.05 + 0.9*g.rng.Float64()) / float64(n)
		p[i] = geom.Pt(cx+r*math.Cos(th), cy+r*math.Sin(th))
	}
	return p.Clockwise()
}

// Box returns an axis-aligned rectangle polygon.
func Box(minX, minY, maxX, maxY float64) geom.Polygon {
	return geom.Poly(
		geom.Pt(minX, maxY), geom.Pt(maxX, maxY), geom.Pt(maxX, minY), geom.Pt(minX, minY),
	)
}

// BoxRegion returns a single-box region.
func BoxRegion(minX, minY, maxX, maxY float64) geom.Region {
	return geom.Rgn(Box(minX, minY, maxX, maxY))
}

// Region returns a REG* region of nComponents disjoint star polygons whose
// centres are spread over the window. Component radii are capped so that
// components drawn in distinct grid cells cannot overlap.
func (g *Generator) Region(window geom.Rect, nComponents, edgesPerComponent int) geom.Region {
	if nComponents < 1 {
		panic("workload: Region needs at least one component")
	}
	cells := int(math.Ceil(math.Sqrt(float64(nComponents))))
	cw := window.Width() / float64(cells)
	ch := window.Height() / float64(cells)
	rMax := 0.45 * math.Min(cw, ch)
	rMin := 0.25 * rMax
	// Choose distinct cells.
	perm := g.rng.Perm(cells * cells)[:nComponents]
	out := make(geom.Region, 0, nComponents)
	for _, cell := range perm {
		cx := window.MinX + (float64(cell%cells)+0.5)*cw
		cy := window.MinY + (float64(cell/cells)+0.5)*ch
		out = append(out, g.StarPolygon(cx, cy, rMin, rMax, edgesPerComponent))
	}
	return out
}

// Country returns a country-like REG* region: a large mainland with a
// rectangular enclave hole (decomposed into two simple polygons sharing
// boundary segments, as in Fig. 2 of the paper), plus the given number of
// small islands placed east of the mainland. The total edge count grows
// with mainlandEdges and islands.
func (g *Generator) Country(cx, cy, size float64, mainlandEdges, islands int) geom.Region {
	if mainlandEdges < 8 {
		mainlandEdges = 8
	}
	// Mainland: ring with hole, as two C-shaped halves around a hole at the
	// centre. Build from an axis-aligned outer box with a jittered boundary
	// replaced by a star ring is complex; instead: outer star ring is
	// approximated by a box with many collinear-jittered vertices.
	hole := 0.25 * size
	outer := 0.5 * size
	// Left half: C-shape opening east.
	left := geom.Polygon{
		geom.Pt(cx-outer, cy+outer),
		geom.Pt(cx, cy+outer),
		geom.Pt(cx, cy+hole),
		geom.Pt(cx-hole, cy+hole),
		geom.Pt(cx-hole, cy-hole),
		geom.Pt(cx, cy-hole),
		geom.Pt(cx, cy-outer),
		geom.Pt(cx-outer, cy-outer),
	}
	right := geom.Polygon{
		geom.Pt(cx, cy+outer),
		geom.Pt(cx+outer, cy+outer),
		geom.Pt(cx+outer, cy-outer),
		geom.Pt(cx, cy-outer),
		geom.Pt(cx, cy-hole),
		geom.Pt(cx+hole, cy-hole),
		geom.Pt(cx+hole, cy+hole),
		geom.Pt(cx, cy+hole),
	}
	// Jagged west coastline: insert extra vertices along the closing edge
	// from the south-west corner back north to the north-west corner, each
	// jutting slightly further west. The polyline is y-monotone and stays
	// strictly west of the rest of the ring, so the ring remains simple and
	// clockwise.
	extra := mainlandEdges - len(left) - len(right)
	if extra > 0 {
		for i := 0; i < extra; i++ {
			frac := (float64(i) + 1) / (float64(extra) + 1)
			y := cy - outer + frac*2*outer
			x := cx - outer - g.uniform(0.01, 0.1)*size
			left = append(left, geom.Pt(x, y))
		}
	}
	out := geom.Region{left.Clockwise(), right.Clockwise()}
	// Islands east of the mainland.
	for i := 0; i < islands; i++ {
		ix := cx + outer + size*0.2 + float64(i%4)*size*0.35
		iy := cy - outer + float64(i/4)*size*0.3 + size*0.05
		r := size * 0.08
		out = append(out, g.StarPolygon(ix, iy, 0.4*r, r, 5+g.rng.Intn(4)))
	}
	return out
}

// Scatter returns n regions spread over a square window whose side grows
// with √n, with a deliberate mix of bounding-box configurations for batch
// (all-pairs) workloads: radii spanning an order of magnitude (many
// strictly-disjoint box pairs — the batch engine's perimeter fast path),
// periodic multi-component regions, and periodic small regions nested
// inside the previous region's bounding box (the contained-MBB fast path).
func (g *Generator) Scatter(n, edgesPerRegion int) []geom.Region {
	if n < 1 {
		panic("workload: Scatter needs at least one region")
	}
	e := maxInt(3, edgesPerRegion)
	side := math.Sqrt(float64(n)) * 10
	out := make([]geom.Region, 0, n)
	for i := 0; i < n; i++ {
		cx := g.uniform(0, side)
		cy := g.uniform(0, side)
		r := g.uniform(0.5, 6)
		switch {
		case i%7 == 3:
			// Two-component region: islands east of the mainland blob.
			half := maxInt(3, e/2)
			out = append(out, geom.Region{
				g.StarPolygon(cx, cy, 0.3*r, r, half),
				g.StarPolygon(cx+2.5*r, cy, 0.3*r, r, half),
			})
		case i%5 == 2 && i > 0:
			// Small region strictly inside the previous region's box.
			prev := out[i-1].BoundingBox()
			pc := prev.Center()
			rr := 0.15 * math.Min(prev.Width(), prev.Height())
			out = append(out, geom.Rgn(g.StarPolygon(pc.X, pc.Y, 0.4*rr, rr, e)))
		default:
			out = append(out, geom.Rgn(g.StarPolygon(cx, cy, 0.3*r, r, e)))
		}
	}
	return out
}

// Cluster returns n regions packed into overlapping groups: group centres
// are scattered over a window whose side grows with √groups, and each
// group's members are drawn within one group radius of its centre, so
// bounding boxes inside a group overlap heavily while distinct groups stay
// mostly far apart. This is the adversarial counterpart of Scatter for the
// batch engines — intra-group pairs defeat the MBB fast paths and exercise
// the full edge-splitting algorithms, while inter-group pairs still prune.
func (g *Generator) Cluster(n, groups, edgesPerRegion int) []geom.Region {
	if n < 1 {
		panic("workload: Cluster needs at least one region")
	}
	if groups < 1 {
		groups = 1
	}
	if groups > n {
		groups = n
	}
	e := maxInt(3, edgesPerRegion)
	side := math.Sqrt(float64(groups)) * 40
	centres := make([]geom.Point, groups)
	for i := range centres {
		centres[i] = geom.Pt(g.uniform(0, side), g.uniform(0, side))
	}
	const groupR = 4.0
	out := make([]geom.Region, 0, n)
	for i := 0; i < n; i++ {
		c := centres[i%groups]
		cx := c.X + g.uniform(-0.3, 0.3)*groupR
		cy := c.Y + g.uniform(-0.3, 0.3)*groupR
		// Radii close to the group radius: members straddle each other's
		// bounding boxes instead of nesting strictly inside single tiles.
		out = append(out, geom.Rgn(g.StarPolygon(cx, cy, 0.6*groupR, groupR, e)))
	}
	return out
}

// Zipf returns n regions inside the window whose sizes AND edge counts
// both follow a zipfian (power-law) rank distribution: a handful of giant,
// densely-digitised regions — three orders of magnitude bigger and more
// detailed than the median — above a long tail of small simple ones. This
// is the huge-world shape (administrative areas, lakes, land cover) the
// level-of-detail tier exists for: all-pairs cost concentrates in the few
// giant primaries, exactly where simplification pays. Every region is a
// single star polygon fully contained in the window; equal seeds produce
// identical worlds.
func (g *Generator) Zipf(window geom.Rect, n, maxEdges int) []geom.Region {
	if n < 1 {
		panic("workload: Zipf needs at least one region")
	}
	if maxEdges < 3 {
		maxEdges = 3
	}
	rMax := 0.25 * math.Min(window.Width(), window.Height())
	out := make([]geom.Region, 0, n)
	// Rank ordering IS the size ordering: out[0] is the biggest region.
	for i := 0; i < n; i++ {
		r := rMax / math.Pow(float64(i+1), 0.9)
		if minR := 1e-4 * rMax; r < minR {
			r = minR
		}
		// Steeper decay for detail than for size: edge counts reach the
		// simple tail within a few hundred ranks.
		edges := int(float64(maxEdges) / math.Pow(float64(i+1), 1.3))
		if edges < 3 {
			edges = 3
		}
		cx := g.uniform(window.MinX+r, window.MaxX-r)
		cy := g.uniform(window.MinY+r, window.MaxY-r)
		// Giants carry smooth, over-digitised coastlines (the shapes the
		// LoD tier simplifies); the simple tail keeps the noisy stars.
		if edges >= 64 {
			out = append(out, geom.Rgn(g.smoothStar(cx, cy, r, edges)))
		} else {
			out = append(out, geom.Rgn(g.StarPolygon(cx, cy, 0.5*r, r, edges)))
		}
	}
	return out
}

// UrbanRural returns n regions inside the window in a clustered
// urban/rural pattern: a few dense city clusters hold roughly 80% of the
// regions (small parcels packed around each city centre, bounding boxes
// overlapping heavily), the remaining 20% are scattered rural regions up
// to an order of magnitude larger. Clustered workloads defeat coarse
// single-tile pruning inside a city while inter-city pairs still answer in
// O(1) — the adversarial counterpart of Zipf for the huge-world tier.
// Every region is fully contained in the window; equal seeds produce
// identical worlds.
func (g *Generator) UrbanRural(window geom.Rect, n, cities, edges int) []geom.Region {
	if n < 1 {
		panic("workload: UrbanRural needs at least one region")
	}
	if cities < 1 {
		cities = 1
	}
	e := maxInt(3, edges)
	w, h := window.Width(), window.Height()
	cityR := 0.03 * math.Min(w, h)
	centres := make([]geom.Point, cities)
	for i := range centres {
		centres[i] = geom.Pt(
			g.uniform(window.MinX+2*cityR, window.MaxX-2*cityR),
			g.uniform(window.MinY+2*cityR, window.MaxY-2*cityR),
		)
	}
	out := make([]geom.Region, 0, n)
	for i := 0; i < n; i++ {
		if i%5 == 4 {
			// Rural: uniform placement, up to 10× a parcel's radius.
			r := g.uniform(0.02, 0.2) * cityR * 10
			cx := g.uniform(window.MinX+r, window.MaxX-r)
			cy := g.uniform(window.MinY+r, window.MaxY-r)
			out = append(out, geom.Rgn(g.StarPolygon(cx, cy, 0.5*r, r, e)))
			continue
		}
		// Urban: parcels packed inside one city's radius.
		c := centres[i%cities]
		r := g.uniform(0.05, 0.25) * cityR
		cx := c.X + g.uniform(-1, 1)*(cityR-r)
		cy := c.Y + g.uniform(-1, 1)*(cityR-r)
		out = append(out, geom.Rgn(g.StarPolygon(cx, cy, 0.5*r, r, e)))
	}
	return out
}

// Pair bundles a primary/reference region pair for relation workloads.
type Pair struct {
	A, B geom.Region
}

// Pairs returns n primary/reference pairs of star polygons with the given
// total edge budget per region, placed so the pair exhibits a diverse mix of
// overlapping, containing and disjoint configurations.
func (g *Generator) Pairs(n, edgesPerRegion int) []Pair {
	out := make([]Pair, n)
	for i := range out {
		bx := g.uniform(-5, 5)
		by := g.uniform(-5, 5)
		b := geom.Rgn(g.StarPolygon(bx, by, 2, 5, maxInt(3, edgesPerRegion)))
		// Primary at a random offset spanning the interesting cases.
		ax := bx + g.uniform(-12, 12)
		ay := by + g.uniform(-12, 12)
		a := geom.Rgn(g.StarPolygon(ax, ay, 2, 8, maxInt(3, edgesPerRegion)))
		out[i] = Pair{A: a, B: b}
	}
	return out
}

// ScalingCase is one point of an edge-count sweep: a primary region with
// exactly Edges edges spanning all nine tiles of the fixed reference.
type ScalingCase struct {
	Edges int
	A, B  geom.Region
}

// ScalingSweep builds the workload for the linearity experiments (E4–E7): a
// fixed reference region and primary star polygons with exactly the given
// edge counts, sized to span all nine tiles so every code path is exercised.
func (g *Generator) ScalingSweep(edgeCounts []int) []ScalingCase {
	b := BoxRegion(-1, -1, 1, 1)
	out := make([]ScalingCase, 0, len(edgeCounts))
	for _, k := range edgeCounts {
		if k < 3 {
			panic(fmt.Sprintf("workload: scaling case needs ≥3 edges, got %d", k))
		}
		a := geom.Rgn(g.StarPolygon(0, 0, 2, 6, k))
		out = append(out, ScalingCase{Edges: k, A: a, B: b})
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
