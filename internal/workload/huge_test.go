package workload

import (
	"math"
	"testing"

	"cardirect/internal/geom"
)

// checkWorld validates one generated world: every region's rings are
// simple, non-degenerate (positive area, ≥3 edges) and closed by
// construction (geom.Polygon stores no repeated first vertex), and every
// bounding box is contained in the window.
func checkWorld(t *testing.T, regions []geom.Region, window geom.Rect) {
	t.Helper()
	for i, r := range regions {
		if err := r.Validate(); err != nil {
			t.Fatalf("region %d: %v", i, err)
		}
		for pi, p := range r {
			if p.NumEdges() < 3 {
				t.Fatalf("region %d polygon %d: %d edges", i, pi, p.NumEdges())
			}
			if a := p.Area(); a <= 0 {
				t.Fatalf("region %d polygon %d: area %g", i, pi, a)
			}
		}
		b := r.BoundingBox()
		if b.MinX < window.MinX || b.MinY < window.MinY || b.MaxX > window.MaxX || b.MaxY > window.MaxY {
			t.Fatalf("region %d box %+v escapes window %+v", i, b, window)
		}
	}
}

// sameWorlds reports whether two generated worlds are vertex-identical.
func sameWorlds(a, b []geom.Region) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for pi := range a[i] {
			if len(a[i][pi]) != len(b[i][pi]) {
				return false
			}
			for vi := range a[i][pi] {
				if !a[i][pi][vi].Eq(b[i][pi][vi]) {
					return false
				}
			}
		}
	}
	return true
}

func TestZipf(t *testing.T) {
	window := geom.Rect{MinX: -500, MinY: -200, MaxX: 700, MaxY: 900}
	regions := New(7).Zipf(window, 400, 4096)
	if len(regions) != 400 {
		t.Fatalf("got %d regions", len(regions))
	}
	checkWorld(t, regions, window)

	// The zipfian promise: sizes and edge counts span orders of magnitude,
	// rank 0 being the giant.
	big := regions[0].BoundingBox()
	small := regions[len(regions)-1].BoundingBox()
	ratio := math.Min(big.Width(), big.Height()) / math.Max(small.Width(), small.Height())
	if ratio < 50 {
		t.Errorf("size ratio biggest/smallest = %g, want a heavy tail", ratio)
	}
	if e := regions[0].NumEdges(); e < 1024 {
		t.Errorf("rank-0 region has %d edges, want the dense head", e)
	}
	if e := regions[len(regions)-1].NumEdges(); e > 8 {
		t.Errorf("tail region has %d edges, want a simple tail", e)
	}

	if !sameWorlds(regions, New(7).Zipf(window, 400, 4096)) {
		t.Error("equal seeds produced different worlds")
	}
	if sameWorlds(regions, New(8).Zipf(window, 400, 4096)) {
		t.Error("different seeds produced identical worlds")
	}
}

func TestUrbanRural(t *testing.T) {
	window := geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 800}
	regions := New(11).UrbanRural(window, 500, 6, 12)
	if len(regions) != 500 {
		t.Fatalf("got %d regions", len(regions))
	}
	checkWorld(t, regions, window)

	// Clustering: the urban 4/5 majority must pack into small city discs,
	// so the median region is far smaller than the window.
	cityR := 0.03 * 800.0
	urbanOK := 0
	for i, r := range regions {
		if i%5 == 4 {
			continue // rural
		}
		b := r.BoundingBox()
		if b.Width() < cityR && b.Height() < cityR {
			urbanOK++
		}
	}
	if urbanOK < 350 {
		t.Errorf("only %d urban parcels are city-sized", urbanOK)
	}

	if !sameWorlds(regions, New(11).UrbanRural(window, 500, 6, 12)) {
		t.Error("equal seeds produced different worlds")
	}
	if sameWorlds(regions, New(12).UrbanRural(window, 500, 6, 12)) {
		t.Error("different seeds produced identical worlds")
	}
}

func TestZipfPanicsAndClamps(t *testing.T) {
	window := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	defer func() {
		if recover() == nil {
			t.Error("Zipf(0 regions) did not panic")
		}
	}()
	// maxEdges below 3 clamps rather than panics.
	if regions := New(1).Zipf(window, 5, 1); len(regions) != 5 {
		t.Error("maxEdges clamp failed")
	}
	checkWorld(t, New(2).UrbanRural(window, 10, 0, 1), window) // cities/edges clamp
	New(1).Zipf(window, 0, 64)
}
