package workload

import (
	"testing"

	"cardirect/internal/core"
	"cardirect/internal/geom"
)

func TestDeterminism(t *testing.T) {
	a := New(42).StarPolygon(0, 0, 1, 3, 12)
	b := New(42).StarPolygon(0, 0, 1, 3, 12)
	if len(a) != len(b) {
		t.Fatal("different lengths from equal seeds")
	}
	for i := range a {
		if !a[i].Eq(b[i]) {
			t.Fatalf("vertex %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := New(43).StarPolygon(0, 0, 1, 3, 12)
	same := true
	for i := range a {
		if !a[i].Eq(c[i]) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical polygons")
	}
}

func TestStarPolygonValid(t *testing.T) {
	g := New(1)
	for _, n := range []int{3, 4, 7, 16, 64, 256} {
		p := g.StarPolygon(5, -3, 1, 4, n)
		if p.NumEdges() != n {
			t.Errorf("n=%d: got %d edges", n, p.NumEdges())
		}
		if !p.IsClockwise() {
			t.Errorf("n=%d: not clockwise", n)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestStarPolygonManySeedsValid(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		g := New(seed)
		p := g.StarPolygon(0, 0, 0.5, 3, 3+int(seed%20))
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestStarPolygonPanics(t *testing.T) {
	g := New(1)
	for _, fn := range []func(){
		func() { g.StarPolygon(0, 0, 1, 2, 2) },
		func() { g.StarPolygon(0, 0, 0, 2, 5) },
		func() { g.StarPolygon(0, 0, 3, 2, 5) },
		func() { g.ConvexPolygon(0, 0, 1, 2) },
		func() { g.Region(geom.Rect{MaxX: 1, MaxY: 1}, 0, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid parameters")
				}
			}()
			fn()
		}()
	}
}

func TestConvexPolygon(t *testing.T) {
	g := New(9)
	for _, n := range []int{3, 5, 10, 40} {
		p := g.ConvexPolygon(1, 2, 5, n)
		if p.NumEdges() != n {
			t.Errorf("n=%d: got %d edges", n, p.NumEdges())
		}
		if err := p.Validate(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		// Convexity: every turn is the same direction (clockwise ⇒ right
		// turns everywhere).
		for i := 0; i < n; i++ {
			a, b, c := p[i], p[(i+1)%n], p[(i+2)%n]
			if geom.Orient(a, b, c) > 0 {
				t.Errorf("n=%d: left turn at vertex %d — not convex clockwise", n, i)
			}
		}
	}
}

func TestRegionComponentsDisjoint(t *testing.T) {
	g := New(5)
	window := geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	r := g.Region(window, 9, 8)
	if len(r) != 9 {
		t.Fatalf("components = %d", len(r))
	}
	if err := r.ValidateStrict(); err != nil {
		t.Fatalf("region not strictly valid: %v", err)
	}
	if got := r.NumEdges(); got != 9*8 {
		t.Errorf("edges = %d, want 72", got)
	}
	for _, p := range r {
		bb := p.BoundingBox()
		if !window.ContainsRect(bb) {
			t.Errorf("component %v escapes the window", bb)
		}
	}
}

func TestCountry(t *testing.T) {
	g := New(11)
	c := g.Country(0, 0, 10, 24, 6)
	if err := c.Validate(); err != nil {
		t.Fatalf("country invalid: %v", err)
	}
	if len(c) != 2+6 {
		t.Errorf("polygons = %d, want mainland halves + 6 islands", len(c))
	}
	// The enclave hole at the centre is not part of the region.
	if c.Contains(geom.Pt(0, 0)) {
		t.Error("hole centre should not be contained")
	}
	// Mainland material around the hole is.
	if !c.Contains(geom.Pt(0, 4)) || !c.Contains(geom.Pt(-4, 0)) {
		t.Error("mainland material missing")
	}
	// Edge budget reached.
	mainEdges := c[0].NumEdges() + c[1].NumEdges()
	if mainEdges != 24 {
		t.Errorf("mainland edges = %d, want 24", mainEdges)
	}
	// A country can serve as primary region against a reference box.
	b := BoxRegion(20, -2, 24, 2)
	if _, err := core.ComputeCDR(c, b); err != nil {
		t.Errorf("ComputeCDR on country: %v", err)
	}
}

func TestCountryMinimumEdges(t *testing.T) {
	g := New(3)
	c := g.Country(0, 0, 10, 0, 0) // below-minimum budget clamps to 16
	if err := c.Validate(); err != nil {
		t.Fatalf("minimal country invalid: %v", err)
	}
	if len(c) != 2 {
		t.Errorf("polygons = %d, want 2", len(c))
	}
}

func TestPairs(t *testing.T) {
	g := New(77)
	ps := g.Pairs(50, 10)
	if len(ps) != 50 {
		t.Fatalf("pairs = %d", len(ps))
	}
	rels := map[core.Relation]int{}
	for i, p := range ps {
		if err := p.A.Validate(); err != nil {
			t.Fatalf("pair %d primary: %v", i, err)
		}
		if err := p.B.Validate(); err != nil {
			t.Fatalf("pair %d reference: %v", i, err)
		}
		r, err := core.ComputeCDR(p.A, p.B)
		if err != nil {
			t.Fatalf("pair %d: %v", i, err)
		}
		rels[r]++
	}
	if len(rels) < 5 {
		t.Errorf("only %d distinct relations across pairs — placement not diverse", len(rels))
	}
}

func TestScalingSweep(t *testing.T) {
	g := New(123)
	counts := []int{8, 32, 128, 512}
	cases := g.ScalingSweep(counts)
	if len(cases) != len(counts) {
		t.Fatalf("cases = %d", len(cases))
	}
	for i, c := range cases {
		if c.Edges != counts[i] || c.A.NumEdges() != counts[i] {
			t.Errorf("case %d: edges = %d/%d, want %d", i, c.Edges, c.A.NumEdges(), counts[i])
		}
		rel, err := core.ComputeCDR(c.A, c.B)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		// The primary spans all nine tiles (rMin 2 > box half-diagonal √2,
		// so the box is strictly inside the star's inner radius).
		if rel.NumTiles() != 9 {
			t.Errorf("case %d: relation %v spans %d tiles, want 9", i, rel, rel.NumTiles())
		}
	}
}

func TestBoxHelpers(t *testing.T) {
	b := Box(0, 0, 4, 2)
	if !b.IsClockwise() || b.Area() != 8 {
		t.Errorf("Box: cw=%v area=%v", b.IsClockwise(), b.Area())
	}
	r := BoxRegion(0, 0, 4, 2)
	if len(r) != 1 || r.Area() != 8 {
		t.Errorf("BoxRegion wrong: %v", r)
	}
}

func TestScatter(t *testing.T) {
	g := New(7)
	regions := g.Scatter(50, 8)
	if len(regions) != 50 {
		t.Fatalf("regions = %d, want 50", len(regions))
	}
	multi, nested := 0, 0
	for i, r := range regions {
		if err := r.Validate(); err != nil {
			t.Fatalf("region %d invalid: %v", i, err)
		}
		if len(r) > 1 {
			multi++
		}
		if i > 0 && regions[i-1].BoundingBox().ContainsRect(r.BoundingBox()) {
			nested++
		}
	}
	if multi == 0 {
		t.Error("Scatter produced no multi-component regions")
	}
	if nested == 0 {
		t.Error("Scatter produced no contained-MBB pairs")
	}
	// Determinism: equal seeds, equal workloads.
	again := New(7).Scatter(50, 8)
	for i := range regions {
		if regions[i].BoundingBox() != again[i].BoundingBox() {
			t.Fatalf("region %d differs across equal-seed runs", i)
		}
	}
}

func TestCluster(t *testing.T) {
	g := New(11)
	regions := g.Cluster(60, 6, 8)
	if len(regions) != 60 {
		t.Fatalf("regions = %d, want 60", len(regions))
	}
	for i, r := range regions {
		if err := r.Validate(); err != nil {
			t.Fatalf("region %d invalid: %v", i, err)
		}
	}
	// Round-robin group assignment: members of one group overlap heavily.
	// Require at least 90% of same-group box pairs to intersect — jitter can
	// push the odd pair apart, but the groups must stay dense.
	const groups = 6
	sameTotal, sameOverlap := 0, 0
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			if i%groups != j%groups {
				continue
			}
			sameTotal++
			if regions[i].BoundingBox().Intersects(regions[j].BoundingBox()) {
				sameOverlap++
			}
		}
	}
	if sameTotal == 0 {
		t.Fatal("no same-group pairs")
	}
	if float64(sameOverlap) < 0.9*float64(sameTotal) {
		t.Errorf("only %d of %d same-group box pairs overlap", sameOverlap, sameTotal)
	}
	// Determinism: equal seeds, equal workloads.
	again := New(11).Cluster(60, 6, 8)
	for i := range regions {
		if regions[i].BoundingBox() != again[i].BoundingBox() {
			t.Fatalf("region %d differs across equal-seed runs", i)
		}
	}
}
