package geom

import (
	"testing"
	"testing/quick"
)

func TestSegmentBasics(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(4, 3))
	if got := s.Len(); got != 5 {
		t.Errorf("Len = %v", got)
	}
	if got := s.Mid(); !got.Eq(Pt(2, 1.5)) {
		t.Errorf("Mid = %v", got)
	}
	if !s.Reverse().A.Eq(s.B) || !s.Reverse().B.Eq(s.A) {
		t.Errorf("Reverse broken: %v", s.Reverse())
	}
	if s.IsDegenerate() {
		t.Error("non-degenerate segment reported degenerate")
	}
	if !Seg(Pt(1, 1), Pt(1, 1)).IsDegenerate() {
		t.Error("degenerate segment not detected")
	}
	if !Seg(Pt(2, 0), Pt(2, 9)).IsVertical() {
		t.Error("vertical not detected")
	}
	if !Seg(Pt(0, 3), Pt(9, 3)).IsHorizontal() {
		t.Error("horizontal not detected")
	}
}

func TestCrossVertical(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 10))
	if tt, ok := s.CrossVertical(5); !ok || tt != 0.5 {
		t.Errorf("CrossVertical(5) = %v,%v", tt, ok)
	}
	// Touching at an endpoint is not a crossing (Definition 3 of the paper).
	if _, ok := s.CrossVertical(0); ok {
		t.Error("endpoint touch reported as crossing")
	}
	if _, ok := s.CrossVertical(10); ok {
		t.Error("endpoint touch reported as crossing")
	}
	// Line beyond the segment.
	if _, ok := s.CrossVertical(11); ok {
		t.Error("non-intersecting line reported as crossing")
	}
	// Vertical segment lying on the line is not a crossing.
	v := Seg(Pt(5, 0), Pt(5, 10))
	if _, ok := v.CrossVertical(5); ok {
		t.Error("collinear vertical segment reported as crossing")
	}
}

func TestCrossHorizontal(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 10))
	if tt, ok := s.CrossHorizontal(2.5); !ok || tt != 0.25 {
		t.Errorf("CrossHorizontal(2.5) = %v,%v", tt, ok)
	}
	if _, ok := s.CrossHorizontal(0); ok {
		t.Error("endpoint touch reported as crossing")
	}
	h := Seg(Pt(0, 5), Pt(10, 5))
	if _, ok := h.CrossHorizontal(5); ok {
		t.Error("collinear horizontal segment reported as crossing")
	}
}

func TestAtSnapping(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(3, 9))
	tt, ok := s.CrossVertical(1)
	if !ok {
		t.Fatal("expected crossing")
	}
	p := s.AtOnVertical(tt, 1)
	if p.X != 1 {
		t.Errorf("AtOnVertical did not snap x: %v", p)
	}
	tt2, ok := s.CrossHorizontal(3)
	if !ok {
		t.Fatal("expected crossing")
	}
	q := s.AtOnHorizontal(tt2, 3)
	if q.Y != 3 {
		t.Errorf("AtOnHorizontal did not snap y: %v", q)
	}
	if got := s.At(1.0 / 3); got.Y != 3 {
		t.Errorf("At(1/3) = %v", got)
	}
}

func TestSegmentsIntersect(t *testing.T) {
	cases := []struct {
		s, u Segment
		want bool
	}{
		{Seg(Pt(0, 0), Pt(4, 4)), Seg(Pt(0, 4), Pt(4, 0)), true},  // X crossing
		{Seg(Pt(0, 0), Pt(1, 1)), Seg(Pt(2, 2), Pt(3, 3)), false}, // disjoint collinear
		{Seg(Pt(0, 0), Pt(2, 2)), Seg(Pt(1, 1), Pt(3, 3)), true},  // collinear overlap
		{Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(1, 0), Pt(2, 5)), true},  // shared endpoint
		{Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(2, 0), Pt(2, 3)), true},  // T-touch
		{Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(5, 1), Pt(6, 2)), false}, // disjoint
		{Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(2, 1), Pt(2, 3)), false}, // above
	}
	for i, c := range cases {
		if got := SegmentsIntersect(c.s, c.u); got != c.want {
			t.Errorf("case %d: SegmentsIntersect(%v,%v) = %v, want %v", i, c.s, c.u, got, c.want)
		}
		if got := SegmentsIntersect(c.u, c.s); got != c.want {
			t.Errorf("case %d (swapped): got %v, want %v", i, got, c.want)
		}
	}
}

func TestSegmentsProperlyIntersect(t *testing.T) {
	cases := []struct {
		s, u Segment
		want bool
	}{
		{Seg(Pt(0, 0), Pt(4, 4)), Seg(Pt(0, 4), Pt(4, 0)), true},  // X crossing
		{Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(1, 0), Pt(2, 5)), false}, // shared endpoint only
		{Seg(Pt(0, 0), Pt(2, 2)), Seg(Pt(1, 1), Pt(3, 3)), true},  // collinear overlap
		{Seg(Pt(0, 0), Pt(2, 0)), Seg(Pt(2, 0), Pt(4, 0)), false}, // collinear touch at point
		{Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(2, 0), Pt(2, 3)), true},  // T: endpoint inside other
		{Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(0, 0), Pt(4, 0)), true},  // identical
		{Seg(Pt(0, 0), Pt(1, 1)), Seg(Pt(5, 5), Pt(6, 6)), false}, // disjoint collinear
	}
	for i, c := range cases {
		if got := SegmentsProperlyIntersect(c.s, c.u); got != c.want {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
		if got := SegmentsProperlyIntersect(c.u, c.s); got != c.want {
			t.Errorf("case %d (swapped): got %v, want %v", i, got, c.want)
		}
	}
}

func TestSegmentsIntersectSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy int8) bool {
		s := Seg(Pt(float64(ax), float64(ay)), Pt(float64(bx), float64(by)))
		u := Seg(Pt(float64(cx), float64(cy)), Pt(float64(dx), float64(dy)))
		return SegmentsIntersect(s, u) == SegmentsIntersect(u, s) &&
			SegmentsProperlyIntersect(s, u) == SegmentsProperlyIntersect(u, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestProperImpliesIntersectProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy int8) bool {
		s := Seg(Pt(float64(ax), float64(ay)), Pt(float64(bx), float64(by)))
		u := Seg(Pt(float64(cx), float64(cy)), Pt(float64(dx), float64(dy)))
		if SegmentsProperlyIntersect(s, u) {
			return SegmentsIntersect(s, u)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
