package geom

// Error-bounded ring simplification for the level-of-detail compute tier
// (internal/core's LoD types). The contract the LoD correctness proofs
// lean on has two halves, both established here:
//
//  1. Vertex subset, anchored at the extremes. The simplified ring keeps a
//     subset of the original vertices in ring order, and the subset always
//     includes a vertex attaining each of MinX, MaxX, MinY and MaxY. The
//     bounding box of the simplified polygon is therefore EXACTLY the
//     original's — no epsilon inflation — so every MBB-derived structure
//     (reference grids, box fast paths, R-tree entries) computed from the
//     simplified geometry is identical to the exact one.
//
//  2. Hausdorff(∂p, ∂p̃) ≤ eps, in BOTH directions. Douglas–Peucker keeps
//     splitting a chain while some dropped vertex is farther than eps from
//     the chord, so on return every dropped vertex is within eps of its
//     chord. Point-to-segment distance is convex in the query point, so
//     every point of an original edge (a convex combination of two
//     vertices in the same chord span) is also within eps of that chord:
//     ∂p ⊆ N_eps(∂p̃). Conversely, for a point q on a chord a→b, the
//     original chain runs from a to b and therefore crosses the line
//     through q perpendicular to the chord; the crossing point c has
//     q = proj_ab(c), so dist(q,c) = dist(c, line ab) ≤ eps: ∂p̃ ⊆ N_eps(∂p).
//
// Both properties hold per chord span and hence for the whole ring.

// distPointSeg returns the Euclidean distance from q to segment ab.
func distPointSeg(q, a, b Point) float64 {
	dx, dy := b.X-a.X, b.Y-a.Y
	l2 := dx*dx + dy*dy
	if l2 == 0 {
		return q.Dist(a)
	}
	t := ((q.X-a.X)*dx + (q.Y-a.Y)*dy) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return q.Dist(Point{X: a.X + t*dx, Y: a.Y + t*dy})
}

// dpChain marks keep[i] for every vertex of the open chain idx[lo..hi]
// (endpoints already kept) that Douglas–Peucker retains at tolerance eps.
// idx maps chain positions to ring indices of p.
func dpChain(p Polygon, idx []int, lo, hi int, eps float64, keep []bool) {
	if hi-lo < 2 {
		return
	}
	a, b := p[idx[lo]], p[idx[hi]]
	worst, worstDist := -1, eps
	for i := lo + 1; i < hi; i++ {
		if d := distPointSeg(p[idx[i]], a, b); d > worstDist {
			worst, worstDist = i, d
		}
	}
	if worst < 0 {
		return // every interior vertex within eps of the chord: drop them all
	}
	keep[idx[worst]] = true
	dpChain(p, idx, lo, worst, eps, keep)
	dpChain(p, idx, worst, hi, eps, keep)
}

// SimplifyPolygon returns p simplified by anchored Douglas–Peucker with
// tolerance eps: a ring whose vertices are a subset of p's in ring order,
// whose bounding box equals p's exactly, and whose boundary is within
// Hausdorff distance eps of p's boundary in both directions (see the
// file comment for why). Rings of at most four vertices, eps ≤ 0, and
// simplifications that would degenerate below three vertices return p
// unchanged. The returned ring shares no storage with p unless it IS p.
func SimplifyPolygon(p Polygon, eps float64) Polygon {
	n := len(p)
	if n <= 4 || eps <= 0 {
		return p
	}
	// Anchor the extreme vertices so the MBB survives exactly.
	iMinX, iMaxX, iMinY, iMaxY := 0, 0, 0, 0
	for i, v := range p {
		if v.X < p[iMinX].X {
			iMinX = i
		}
		if v.X > p[iMaxX].X {
			iMaxX = i
		}
		if v.Y < p[iMinY].Y {
			iMinY = i
		}
		if v.Y > p[iMaxY].Y {
			iMaxY = i
		}
	}
	keep := make([]bool, n)
	keep[iMinX], keep[iMaxX], keep[iMinY], keep[iMaxY] = true, true, true, true
	anchors := make([]int, 0, 4)
	for i := 0; i < n; i++ {
		if keep[i] {
			anchors = append(anchors, i)
		}
	}
	if len(anchors) < 2 {
		// A single anchor (every extreme at one vertex) means a ring too
		// degenerate to simplify meaningfully.
		return p
	}
	// Run DP over each cyclic chain between consecutive anchors. The chain
	// from anchors[k] to anchors[k+1] wraps the ring for the final span.
	idx := make([]int, 0, n+1)
	for k := range anchors {
		lo := anchors[k]
		hi := anchors[(k+1)%len(anchors)]
		idx = idx[:0]
		for i := lo; ; i = (i + 1) % n {
			idx = append(idx, i)
			if i == hi && len(idx) > 1 {
				break
			}
		}
		dpChain(p, idx, 0, len(idx)-1, eps, keep)
	}
	kept := 0
	for _, k := range keep {
		if k {
			kept++
		}
	}
	if kept < 3 || kept == n {
		// Either nothing was dropped or the result would degenerate below a
		// ring: keep the original.
		return p
	}
	out := make(Polygon, 0, kept)
	for i, k := range keep {
		if k {
			out = append(out, p[i])
		}
	}
	return out
}

// SimplifyRegion simplifies each polygon of r independently with
// SimplifyPolygon; the guarantees are per-polygon, so the region bounding
// box is preserved exactly and the region boundary stays within Hausdorff
// distance eps of the original in both directions.
func SimplifyRegion(r Region, eps float64) Region {
	out := make(Region, len(r))
	changed := false
	for i, p := range r {
		out[i] = SimplifyPolygon(p, eps)
		if len(out[i]) != len(p) {
			changed = true
		}
	}
	if !changed {
		return r
	}
	return out
}
