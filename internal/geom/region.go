package geom

import (
	"fmt"
)

// Region is a region of the class REG* of the paper: a non-empty bounded
// point set represented as a set of simple polygons. Disconnected regions
// are sets of disjoint polygons; regions with holes are represented — as in
// Fig. 2 of the paper — by decomposing the ring around the hole into simple
// polygons that share boundary segments, so the union of the stored polygons
// is exactly the region and the region's area is the sum of the polygon
// areas.
type Region []Polygon

// Rgn is shorthand for constructing a Region from polygons.
func Rgn(ps ...Polygon) Region { return Region(ps) }

// NumEdges returns the total number of edges over all polygons — the
// quantity k in the paper's O(k_a + k_b) complexity bounds.
func (r Region) NumEdges() int {
	n := 0
	for _, p := range r {
		n += p.NumEdges()
	}
	return n
}

// BoundingBox returns mbb(r), the region's minimum bounding box: the
// rectangle spanned by inf/sup of the region's projections on both axes.
func (r Region) BoundingBox() Rect {
	b := EmptyRect()
	for _, p := range r {
		b = b.Union(p.BoundingBox())
	}
	return b
}

// Area returns the region's area: the sum of its polygons' areas (the
// representation invariant is that polygons have disjoint interiors).
func (r Region) Area() float64 {
	var a float64
	for _, p := range r {
		a += p.Area()
	}
	return a
}

// Contains reports whether q lies in the region (inside or on the boundary
// of any component polygon).
func (r Region) Contains(q Point) bool {
	for _, p := range r {
		if p.Contains(q) {
			return true
		}
	}
	return false
}

// Clockwise returns the region with every polygon normalised to the
// canonical clockwise orientation.
func (r Region) Clockwise() Region {
	out := make(Region, len(r))
	for i, p := range r {
		out[i] = p.Clockwise()
	}
	return out
}

// Clone returns a deep copy of the region.
func (r Region) Clone() Region {
	out := make(Region, len(r))
	for i, p := range r {
		out[i] = p.Clone()
	}
	return out
}

// Translate returns the region shifted by the vector d.
func (r Region) Translate(d Point) Region {
	out := make(Region, len(r))
	for i, p := range r {
		out[i] = p.Translate(d)
	}
	return out
}

// Scale returns the region scaled by s about the origin.
func (r Region) Scale(s float64) Region {
	out := make(Region, len(r))
	for i, p := range r {
		out[i] = p.Scale(s)
	}
	return out
}

// Validate checks that the region is a usable REG* representation: at least
// one polygon, and every polygon individually valid. Pairwise interior
// disjointness of component polygons is the caller's modelling obligation
// (shared boundary segments are explicitly allowed — that is how holes are
// represented); ValidateStrict additionally spot-checks it.
func (r Region) Validate() error {
	if len(r) == 0 {
		return fmt.Errorf("geom: region has no polygons (regions are non-empty)")
	}
	for i, p := range r {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("geom: region polygon %d: %w", i, err)
		}
	}
	return nil
}

// ValidateStrict performs Validate plus a pairwise check that no two
// component polygons properly overlap: no edge of one properly crosses an
// edge of the other, and no polygon's representative interior point lies
// strictly inside another polygon. Shared boundary segments remain legal.
func (r Region) ValidateStrict() error {
	if err := r.Validate(); err != nil {
		return err
	}
	for i := 0; i < len(r); i++ {
		for j := i + 1; j < len(r); j++ {
			if polygonsProperlyOverlap(r[i], r[j]) {
				return fmt.Errorf("geom: region polygons %d and %d overlap improperly", i, j)
			}
		}
	}
	return nil
}

// polygonsProperlyOverlap reports whether two simple polygons share interior
// area, detected by proper edge crossings or full containment of an interior
// witness point.
func polygonsProperlyOverlap(p, q Polygon) bool {
	if !p.BoundingBox().Intersects(q.BoundingBox()) {
		return false
	}
	for i := 0; i < len(p); i++ {
		for j := 0; j < len(q); j++ {
			ep, eq := p.Edge(i), q.Edge(j)
			o1 := Orient(ep.A, ep.B, eq.A)
			o2 := Orient(ep.A, ep.B, eq.B)
			o3 := Orient(eq.A, eq.B, ep.A)
			o4 := Orient(eq.A, eq.B, ep.B)
			if o1 != o2 && o3 != o4 && o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0 {
				// A transversal crossing strictly inside both edges means
				// the boundaries cross, hence interiors overlap.
				return true
			}
		}
	}
	// No boundary crossing: overlap can only be containment. Test an
	// interior witness of each polygon against the other.
	if wi, ok := interiorWitness(p); ok && q.Contains(wi) && !onBoundary(q, wi) {
		return true
	}
	if wj, ok := interiorWitness(q); ok && p.Contains(wj) && !onBoundary(p, wj) {
		return true
	}
	return false
}

// interiorWitness returns a point strictly inside the polygon, found by
// sampling along the bisector of a convex vertex. ok is false for degenerate
// polygons where no witness was found.
func interiorWitness(p Polygon) (Point, bool) {
	c := p.Centroid()
	if p.Contains(c) && !onBoundary(p, c) {
		return c, true
	}
	// Centroid may fall outside a non-convex polygon or inside a hole
	// decomposition piece's notch; probe midpoints between the centroid and
	// each vertex.
	for _, v := range p {
		m := c.Mid(v)
		if p.Contains(m) && !onBoundary(p, m) {
			return m, true
		}
	}
	return Point{}, false
}

// onBoundary reports whether q lies on the boundary of p.
func onBoundary(p Polygon, q Point) bool {
	for i := range p {
		e := p.Edge(i)
		if Orient(e.A, e.B, q) == 0 && onSegment(e, q) {
			return true
		}
	}
	return false
}
