package geom

import "fmt"

// Segment is a directed straight-line edge from A to B. Polygon edges are
// segments taken in the polygon's (clockwise) vertex order; the direction
// matters because the polygon interior lies to the right of A→B.
type Segment struct {
	A, B Point
}

// Seg is shorthand for constructing a Segment.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Reverse returns the segment with its direction flipped.
func (s Segment) Reverse() Segment { return Segment{A: s.B, B: s.A} }

// Mid returns the segment midpoint.
func (s Segment) Mid() Point { return s.A.Mid(s.B) }

// Len returns the Euclidean length of the segment.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// IsDegenerate reports whether the segment has coincident endpoints.
func (s Segment) IsDegenerate() bool { return s.A.Eq(s.B) }

// IsVertical reports whether the segment lies on a vertical line x = const.
func (s Segment) IsVertical() bool { return s.A.X == s.B.X }

// IsHorizontal reports whether the segment lies on a horizontal line y = const.
func (s Segment) IsHorizontal() bool { return s.A.Y == s.B.Y }

// String renders the segment as "A→B".
func (s Segment) String() string { return fmt.Sprintf("%v→%v", s.A, s.B) }

// CrossVertical reports whether the open interior of the segment crosses the
// vertical line x = m, and if so the parameter t ∈ (0,1) of the crossing
// along A→B. Touching the line only at an endpoint, or lying entirely on it,
// is not a crossing — this matches Definition 3 of the paper ("e does not
// cross AB") where those cases are excluded.
func (s Segment) CrossVertical(m float64) (t float64, ok bool) {
	dx := s.B.X - s.A.X
	if dx == 0 {
		return 0, false
	}
	t = (m - s.A.X) / dx
	if t <= 0 || t >= 1 {
		return 0, false
	}
	return t, true
}

// CrossHorizontal is the horizontal-line analogue of CrossVertical for the
// line y = l.
func (s Segment) CrossHorizontal(l float64) (t float64, ok bool) {
	dy := s.B.Y - s.A.Y
	if dy == 0 {
		return 0, false
	}
	t = (l - s.A.Y) / dy
	if t <= 0 || t >= 1 {
		return 0, false
	}
	return t, true
}

// At returns the point at parameter t along A→B; t=0 yields A and t=1
// yields B. When the segment is known to cross an axis-parallel line at t,
// the corresponding coordinate is snapped exactly onto the line so that
// later tile classification never suffers from rounding drift.
func (s Segment) At(t float64) Point {
	return Point{s.A.X + t*(s.B.X-s.A.X), s.A.Y + t*(s.B.Y-s.A.Y)}
}

// AtOnVertical returns the point at parameter t with its x-coordinate
// snapped exactly to m (the vertical line the segment crosses at t).
func (s Segment) AtOnVertical(t, m float64) Point {
	return Point{m, s.A.Y + t*(s.B.Y-s.A.Y)}
}

// AtOnHorizontal returns the point at parameter t with its y-coordinate
// snapped exactly to l (the horizontal line the segment crosses at t).
func (s Segment) AtOnHorizontal(t, l float64) Point {
	return Point{s.A.X + t*(s.B.X-s.A.X), l}
}

// SegmentsIntersect reports whether segments s and u share at least one
// point, including touching at endpoints and collinear overlap. It uses
// exact orientation tests only (no divisions).
func SegmentsIntersect(s, u Segment) bool {
	o1 := Orient(s.A, s.B, u.A)
	o2 := Orient(s.A, s.B, u.B)
	o3 := Orient(u.A, u.B, s.A)
	o4 := Orient(u.A, u.B, s.B)
	if o1 != o2 && o3 != o4 {
		return true
	}
	// Collinear cases: check bounding-interval overlap.
	if o1 == 0 && onSegment(s, u.A) {
		return true
	}
	if o2 == 0 && onSegment(s, u.B) {
		return true
	}
	if o3 == 0 && onSegment(u, s.A) {
		return true
	}
	if o4 == 0 && onSegment(u, s.B) {
		return true
	}
	return false
}

// SegmentsProperlyIntersect reports whether the open interiors of s and u
// share a point, or the segments overlap collinearly over more than a single
// point. Shared endpoints alone do not count; this is the test polygon
// simplicity validation needs, since consecutive polygon edges legitimately
// share a vertex.
func SegmentsProperlyIntersect(s, u Segment) bool {
	o1 := Orient(s.A, s.B, u.A)
	o2 := Orient(s.A, s.B, u.B)
	o3 := Orient(u.A, u.B, s.A)
	o4 := Orient(u.A, u.B, s.B)
	if o1 != o2 && o3 != o4 {
		// They cross; exclude the case where the crossing is exactly a
		// shared endpoint.
		shared := s.A.Eq(u.A) || s.A.Eq(u.B) || s.B.Eq(u.A) || s.B.Eq(u.B)
		return !shared
	}
	if o1 == 0 && o2 == 0 && o3 == 0 && o4 == 0 {
		// Collinear: overlap of more than one point is improper.
		return collinearOverlapLen(s, u)
	}
	// One endpoint lies strictly inside the other segment.
	if o1 == 0 && strictlyInside(s, u.A) {
		return true
	}
	if o2 == 0 && strictlyInside(s, u.B) {
		return true
	}
	if o3 == 0 && strictlyInside(u, s.A) {
		return true
	}
	if o4 == 0 && strictlyInside(u, s.B) {
		return true
	}
	return false
}

// onSegment reports whether point p, known to be collinear with s, lies on s
// (endpoints included).
func onSegment(s Segment, p Point) bool {
	return min2(s.A.X, s.B.X) <= p.X && p.X <= max2(s.A.X, s.B.X) &&
		min2(s.A.Y, s.B.Y) <= p.Y && p.Y <= max2(s.A.Y, s.B.Y)
}

// strictlyInside reports whether point p, known to be collinear with s, lies
// on s excluding both endpoints.
func strictlyInside(s Segment, p Point) bool {
	return onSegment(s, p) && !p.Eq(s.A) && !p.Eq(s.B)
}

// collinearOverlapLen reports whether two collinear segments overlap in more
// than a single point.
func collinearOverlapLen(s, u Segment) bool {
	// Project on the dominant axis to avoid degenerate comparisons.
	if abs(s.B.X-s.A.X) >= abs(s.B.Y-s.A.Y) {
		lo1, hi1 := minmax(s.A.X, s.B.X)
		lo2, hi2 := minmax(u.A.X, u.B.X)
		return min2(hi1, hi2) > max2(lo1, lo2)
	}
	lo1, hi1 := minmax(s.A.Y, s.B.Y)
	lo2, hi2 := minmax(u.A.Y, u.B.Y)
	return min2(hi1, hi2) > max2(lo1, lo2)
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minmax(a, b float64) (lo, hi float64) {
	if a < b {
		return a, b
	}
	return b, a
}

func abs(a float64) float64 {
	if a < 0 {
		return -a
	}
	return a
}
