package geom

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestDecomposeNoHoles(t *testing.T) {
	sq := Poly(Pt(0, 4), Pt(4, 4), Pt(4, 0), Pt(0, 0))
	r, err := DecomposeWithHoles(sq, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 1 || r.Area() != 16 {
		t.Errorf("trivial decomposition: %d pieces, area %v", len(r), r.Area())
	}
}

func TestDecomposeSquareWithHole(t *testing.T) {
	outer := Poly(Pt(0, 4), Pt(4, 4), Pt(4, 0), Pt(0, 0))
	hole := Poly(Pt(1, 3), Pt(3, 3), Pt(3, 1), Pt(1, 1))
	r, err := DecomposeWithHoles(outer, []Polygon{hole})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ValidateStrict(); err != nil {
		t.Fatalf("decomposition invalid: %v", err)
	}
	if math.Abs(r.Area()-(16-4)) > 1e-9 {
		t.Errorf("area = %v, want 12", r.Area())
	}
	if r.Contains(Pt(2, 2)) {
		t.Error("hole centre should not be contained")
	}
	for _, p := range []Point{Pt(0.5, 0.5), Pt(0.5, 3.5), Pt(3.5, 2), Pt(2, 0.5), Pt(2, 3.5)} {
		if !r.Contains(p) {
			t.Errorf("material point %v not contained", p)
		}
	}
}

func TestDecomposeTwoHoles(t *testing.T) {
	outer := Poly(Pt(0, 4), Pt(10, 4), Pt(10, 0), Pt(0, 0))
	h1 := Poly(Pt(1, 3), Pt(3, 3), Pt(3, 1), Pt(1, 1))
	h2 := Poly(Pt(6, 3), Pt(8, 3), Pt(8, 1), Pt(6, 1))
	r, err := DecomposeWithHoles(outer, []Polygon{h1, h2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Area()-(40-4-4)) > 1e-9 {
		t.Errorf("area = %v, want 32", r.Area())
	}
	if r.Contains(Pt(2, 2)) || r.Contains(Pt(7, 2)) {
		t.Error("hole centres contained")
	}
	if !r.Contains(Pt(4.5, 2)) {
		t.Error("material between holes missing")
	}
}

func TestDecomposeTriangleHole(t *testing.T) {
	outer := Poly(Pt(0, 8), Pt(8, 8), Pt(8, 0), Pt(0, 0))
	hole := Poly(Pt(2, 2), Pt(4, 6), Pt(6, 2))
	r, err := DecomposeWithHoles(outer, []Polygon{hole})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Area()-(64-8)) > 1e-9 {
		t.Errorf("area = %v, want 56", r.Area())
	}
	// Monte-Carlo containment agreement with the analytic definition.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		p := Pt(rng.Float64()*8, rng.Float64()*8)
		want := outer.Contains(p) && !strictlyInsidePolygon(hole, p)
		if got := r.Contains(p); got != want {
			// Boundary points may legitimately differ; skip those.
			if onBoundary(hole, p) || onBoundary(outer, p) {
				continue
			}
			onPiece := false
			for _, piece := range r {
				if onBoundary(piece, p) {
					onPiece = true
					break
				}
			}
			if onPiece {
				continue
			}
			t.Fatalf("point %v: decomposed %v, analytic %v", p, got, want)
		}
	}
}

func strictlyInsidePolygon(p Polygon, q Point) bool {
	return p.Contains(q) && !onBoundary(p, q)
}

func TestDecomposeErrors(t *testing.T) {
	outer := Poly(Pt(0, 4), Pt(4, 4), Pt(4, 0), Pt(0, 0))
	if _, err := DecomposeWithHoles(Poly(Pt(0, 0), Pt(1, 1)), nil); err == nil {
		t.Error("invalid outer should fail")
	}
	bow := Poly(Pt(0, 0), Pt(2, 2), Pt(2, 0), Pt(0, 2))
	if _, err := DecomposeWithHoles(outer, []Polygon{bow}); err == nil {
		t.Error("invalid hole should fail")
	}
	far := Poly(Pt(10, 12), Pt(12, 12), Pt(12, 10), Pt(10, 10))
	if _, err := DecomposeWithHoles(outer, []Polygon{far}); err == nil {
		t.Error("hole outside the outer ring should fail")
	}
	// Hole covering the whole outer ring leaves nothing.
	same := Poly(Pt(0, 4), Pt(4, 4), Pt(4, 0), Pt(0, 0))
	if _, err := DecomposeWithHoles(outer, []Polygon{same}); err == nil {
		t.Error("hole covering everything should fail")
	}
}

func TestParseWKTPolygon(t *testing.T) {
	r, err := ParseWKT("POLYGON ((0 0, 0 4, 4 4, 4 0, 0 0))")
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 1 || r.Area() != 16 {
		t.Errorf("pieces=%d area=%v", len(r), r.Area())
	}
	// Case-insensitive, flexible whitespace, unclosed ring accepted.
	r2, err := ParseWKT("polygon((0 0,0 4,4 4,4 0))")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Area() != 16 {
		t.Errorf("area = %v", r2.Area())
	}
}

func TestParseWKTPolygonWithHole(t *testing.T) {
	r, err := ParseWKT("POLYGON ((0 0, 0 4, 4 4, 4 0, 0 0), (1 1, 1 3, 3 3, 3 1, 1 1))")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Area()-12) > 1e-9 {
		t.Errorf("area = %v, want 12", r.Area())
	}
	if r.Contains(Pt(2, 2)) {
		t.Error("hole centre contained")
	}
}

func TestParseWKTMultiPolygon(t *testing.T) {
	r, err := ParseWKT("MULTIPOLYGON (((0 0, 0 1, 1 1, 1 0)), ((5 5, 5 7, 7 7, 7 5)))")
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 || math.Abs(r.Area()-5) > 1e-9 {
		t.Errorf("pieces=%d area=%v", len(r), r.Area())
	}
}

func TestParseWKTErrors(t *testing.T) {
	bad := []string{
		"",
		"LINESTRING (0 0, 1 1)",
		"POLYGON",
		"POLYGON (0 0, 1 1)",             // missing ring parens
		"POLYGON ((0 0, 1 1))",           // too few points
		"POLYGON ((0 0, 0 1, 1 x))",      // bad number
		"POLYGON ((0 0, 0 1, 1 1)) junk", // trailing garbage
		"MULTIPOLYGON ((0 0))",
	}
	for _, s := range bad {
		if _, err := ParseWKT(s); err == nil {
			t.Errorf("ParseWKT(%q) should fail", s)
		}
	}
}

func TestWKTRoundtrip(t *testing.T) {
	orig := Rgn(
		Poly(Pt(0, 4), Pt(4, 4), Pt(4, 0), Pt(0, 0)),
		Poly(Pt(6, 1), Pt(7, 2), Pt(8, 0)),
	)
	w := FormatWKT(orig)
	if !strings.HasPrefix(w, "MULTIPOLYGON") {
		t.Fatalf("unexpected WKT: %q", w)
	}
	back, err := ParseWKT(w)
	if err != nil {
		t.Fatalf("reparse %q: %v", w, err)
	}
	if len(back) != len(orig) {
		t.Fatalf("pieces = %d, want %d", len(back), len(orig))
	}
	if math.Abs(back.Area()-orig.Area()) > 1e-9 {
		t.Errorf("area %v != %v", back.Area(), orig.Area())
	}
}

// Property: for random hole positions strictly inside a fixed outer square,
// decomposition preserves area exactly and never covers the hole.
func TestDecomposeAreaProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	outer := Poly(Pt(0, 10), Pt(10, 10), Pt(10, 0), Pt(0, 0))
	for trial := 0; trial < 100; trial++ {
		x := 1 + rng.Float64()*5
		y := 1 + rng.Float64()*5
		w := 0.5 + rng.Float64()*2
		h := 0.5 + rng.Float64()*2
		hole := Poly(Pt(x, y+h), Pt(x+w, y+h), Pt(x+w, y), Pt(x, y))
		r, err := DecomposeWithHoles(outer, []Polygon{hole})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(r.Area()-(100-w*h)) > 1e-9 {
			t.Fatalf("trial %d: area %v, want %v", trial, r.Area(), 100-w*h)
		}
		if r.Contains(Pt(x+w/2, y+h/2)) {
			t.Fatalf("trial %d: hole centre contained", trial)
		}
	}
}
