package geom

import (
	"testing"
	"testing/quick"
)

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Error("EmptyRect not empty")
	}
	if e.Area() != 0 {
		t.Errorf("empty area = %v", e.Area())
	}
	r := Rect{0, 0, 2, 3}
	if got := e.Union(r); got != r {
		t.Errorf("empty ∪ r = %v", got)
	}
	if got := r.Union(e); got != r {
		t.Errorf("r ∪ empty = %v", got)
	}
	if e.Intersects(r) || r.Intersects(e) {
		t.Error("empty rect intersects something")
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{1, 2, 5, 10}
	if r.Width() != 4 || r.Height() != 8 {
		t.Errorf("W/H = %v/%v", r.Width(), r.Height())
	}
	if r.Area() != 32 {
		t.Errorf("Area = %v", r.Area())
	}
	if got := r.Center(); !got.Eq(Pt(3, 6)) {
		t.Errorf("Center = %v", got)
	}
	if !r.Contains(Pt(1, 2)) || !r.Contains(Pt(5, 10)) || !r.Contains(Pt(3, 6)) {
		t.Error("Contains misses closed-boundary points")
	}
	if r.Contains(Pt(0.999, 5)) || r.Contains(Pt(5.001, 5)) {
		t.Error("Contains accepts outside points")
	}
}

func TestRectSetOps(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	b := Rect{2, 2, 6, 6}
	c := Rect{5, 5, 7, 7}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("overlapping rects should intersect")
	}
	if a.Intersects(c) {
		t.Error("disjoint rects should not intersect")
	}
	// Touching at a corner counts (closed rectangles).
	d := Rect{4, 4, 8, 8}
	if !a.Intersects(d) {
		t.Error("corner-touching closed rects should intersect")
	}
	if got := a.Union(b); got != (Rect{0, 0, 6, 6}) {
		t.Errorf("Union = %v", got)
	}
	if !a.Union(b).ContainsRect(a) || !a.Union(b).ContainsRect(b) {
		t.Error("Union does not contain operands")
	}
	if !a.ContainsRect(Rect{1, 1, 2, 2}) {
		t.Error("ContainsRect false negative")
	}
	if a.ContainsRect(b) {
		t.Error("ContainsRect false positive")
	}
}

func TestRectExtendPoint(t *testing.T) {
	r := EmptyRect().ExtendPoint(Pt(1, 2))
	if r != (Rect{1, 2, 1, 2}) {
		t.Errorf("ExtendPoint from empty = %v", r)
	}
	r = r.ExtendPoint(Pt(-3, 5))
	if r != (Rect{-3, 2, 1, 5}) {
		t.Errorf("ExtendPoint = %v", r)
	}
}

func TestRectVerticesClockwise(t *testing.T) {
	r := Rect{0, 0, 2, 1}
	p := Polygon(r.Vertices())
	if len(p) != 4 {
		t.Fatalf("vertices = %d", len(p))
	}
	if !p.IsClockwise() {
		t.Error("Rect.Vertices not clockwise")
	}
	if p.Area() != r.Area() {
		t.Errorf("vertex polygon area %v != rect area %v", p.Area(), r.Area())
	}
}

// Property: Union is commutative, associative and idempotent on random
// rectangles.
func TestRectUnionAlgebraProperty(t *testing.T) {
	mk := func(a, b, c, d int8) Rect {
		x1, x2 := minmax(float64(a), float64(b))
		y1, y2 := minmax(float64(c), float64(d))
		return Rect{x1, y1, x2, y2}
	}
	f := func(a1, b1, c1, d1, a2, b2, c2, d2, a3, b3, c3, d3 int8) bool {
		r, s, u := mk(a1, b1, c1, d1), mk(a2, b2, c2, d2), mk(a3, b3, c3, d3)
		if r.Union(s) != s.Union(r) {
			return false
		}
		if r.Union(r) != r {
			return false
		}
		return r.Union(s).Union(u) == r.Union(s.Union(u))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a region's bounding box contains every vertex of the region and
// is the union of its polygons' boxes.
func TestBoundingBoxProperty(t *testing.T) {
	f := func(dx1, dy1, dx2, dy2 int8) bool {
		r := Rgn(
			unitSquareCW().Translate(Pt(float64(dx1), float64(dy1))),
			unitSquareCW().Translate(Pt(float64(dx2), float64(dy2))),
		)
		bb := r.BoundingBox()
		for _, p := range r {
			for _, v := range p {
				if !bb.Contains(v) {
					return false
				}
			}
		}
		return bb == r[0].BoundingBox().Union(r[1].BoundingBox())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
