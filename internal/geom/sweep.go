package geom

import (
	"sort"
)

// HasProperIntersection reports whether any two segments in the set properly
// intersect (cross, overlap collinearly, or touch anywhere other than shared
// endpoints), using a Shamos–Hoey-style sweep: events are segment endpoints
// sorted by x, an active set holds segments whose x-span covers the sweep
// line, and each insertion is checked against the active set members whose
// bounding intervals overlap. The expected cost is O(n log n + k·n) for k
// candidate overlaps — on polygon workloads (few or no intersections) this
// is effectively O(n log n), against the O(n²) of the naive pairwise test.
//
// adjacency, when non-nil, marks segment pairs that are allowed to touch at
// a shared endpoint (consecutive polygon edges): adjacency(i, j) must be
// symmetric.
func HasProperIntersection(segs []Segment, adjacency func(i, j int) bool) bool {
	n := len(segs)
	if n < 2 {
		return false
	}
	// Normalise segments left-to-right for the sweep.
	type entry struct {
		seg  Segment // normalised: A.X <= B.X (ties by Y)
		orig int
	}
	es := make([]entry, n)
	for i, s := range segs {
		if s.B.X < s.A.X || (s.B.X == s.A.X && s.B.Y < s.A.Y) {
			s = s.Reverse()
		}
		es[i] = entry{seg: s, orig: i}
	}
	type event struct {
		x     float64
		y     float64
		start bool
		idx   int // index into es
	}
	events := make([]event, 0, 2*n)
	for i, e := range es {
		events = append(events,
			event{x: e.seg.A.X, y: e.seg.A.Y, start: true, idx: i},
			event{x: e.seg.B.X, y: e.seg.B.Y, start: false, idx: i},
		)
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].x != events[b].x {
			return events[a].x < events[b].x
		}
		// Ends before starts at the same x keeps merely-touching segments
		// out of each other's active windows only when safe; since the
		// proper-intersection test itself is exact, ordering ties
		// conservatively (starts first) costs only extra checks.
		if events[a].start != events[b].start {
			return events[a].start
		}
		return events[a].y < events[b].y
	})
	// Active set ordered by the segment's minimum y (a simple ordered list;
	// the exact pairwise test below keeps this correct regardless of the
	// ordering heuristic — the order only prunes comparisons).
	active := make([]int, 0, 64)
	for _, ev := range events {
		e := es[ev.idx]
		if !ev.start {
			for i, idx := range active {
				if idx == ev.idx {
					active = append(active[:i], active[i+1:]...)
					break
				}
			}
			continue
		}
		loY, hiY := minmax(e.seg.A.Y, e.seg.B.Y)
		for _, idx := range active {
			o := es[idx]
			oLo, oHi := minmax(o.seg.A.Y, o.seg.B.Y)
			if oHi < loY || oLo > hiY {
				continue // y-intervals disjoint: cannot intersect
			}
			if adjacency != nil && adjacency(e.orig, o.orig) {
				if SegmentsProperlyIntersect(e.seg, o.seg) {
					return true
				}
				continue
			}
			if SegmentsIntersect(e.seg, o.seg) {
				return true
			}
		}
		active = append(active, ev.idx)
	}
	return false
}

// IsSimpleFast is the sweep-based counterpart of Polygon.IsSimple, suitable
// for the large polygons the paper anticipates in real GIS applications.
// The two implementations agree on every input (property-tested); this one
// runs in O(n log n) expected time on simple inputs instead of O(n²).
func (p Polygon) IsSimpleFast() bool {
	n := len(p)
	if n < 3 {
		return false
	}
	for i := 0; i < n; i++ {
		if p.Edge(i).IsDegenerate() {
			return false
		}
	}
	segs := make([]Segment, n)
	for i := 0; i < n; i++ {
		segs[i] = p.Edge(i)
	}
	adjacent := func(i, j int) bool {
		d := i - j
		if d < 0 {
			d = -d
		}
		return d == 1 || d == n-1
	}
	return !HasProperIntersection(segs, adjacent)
}

// ConvexHull returns the convex hull of the points in counter-clockwise
// order, as computed by Andrew's monotone chain, then normalised to the
// package's canonical clockwise orientation. Duplicate and collinear
// boundary points are dropped. Fewer than three distinct non-collinear
// points yield nil.
func ConvexHull(pts []Point) Polygon {
	if len(pts) < 3 {
		return nil
	}
	ps := make([]Point, len(pts))
	copy(ps, pts)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
	// Deduplicate.
	uniq := ps[:1]
	for _, p := range ps[1:] {
		if !p.Eq(uniq[len(uniq)-1]) {
			uniq = append(uniq, p)
		}
	}
	ps = uniq
	if len(ps) < 3 {
		return nil
	}
	build := func(iter []Point) []Point {
		var h []Point
		for _, p := range iter {
			for len(h) >= 2 && Orient(h[len(h)-2], h[len(h)-1], p) <= 0 {
				h = h[:len(h)-1]
			}
			h = append(h, p)
		}
		return h
	}
	lower := build(ps)
	rev := make([]Point, len(ps))
	for i, p := range ps {
		rev[len(ps)-1-i] = p
	}
	upper := build(rev)
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	if len(hull) < 3 {
		return nil
	}
	return Polygon(hull).Clockwise()
}

// HullOfRegion returns the convex hull of all vertices of the region.
func HullOfRegion(r Region) Polygon {
	var pts []Point
	for _, p := range r {
		pts = append(pts, p...)
	}
	return ConvexHull(pts)
}
