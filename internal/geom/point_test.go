package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); !got.Eq(Pt(4, -2)) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); !got.Eq(Pt(-2, 6)) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); !got.Eq(Pt(2, 4)) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != 1*(-4)-2*3 {
		t.Errorf("Cross = %v", got)
	}
	if got := p.Dist(Pt(4, 6)); got != 5 {
		t.Errorf("Dist = %v", got)
	}
	if got := p.Mid(q); !got.Eq(Pt(2, -1)) {
		t.Errorf("Mid = %v", got)
	}
}

func TestPointIsFinite(t *testing.T) {
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(0, 0), true},
		{Pt(math.NaN(), 0), false},
		{Pt(0, math.NaN()), false},
		{Pt(math.Inf(1), 0), false},
		{Pt(0, math.Inf(-1)), false},
		{Pt(-1e300, 1e300), true},
	}
	for _, c := range cases {
		if got := c.p.IsFinite(); got != c.want {
			t.Errorf("IsFinite(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPointString(t *testing.T) {
	if got := Pt(1.5, -2).String(); got != "(1.5, -2)" {
		t.Errorf("String = %q", got)
	}
}

func TestOrient(t *testing.T) {
	a, b := Pt(0, 0), Pt(1, 0)
	if got := Orient(a, b, Pt(0, 1)); got != +1 {
		t.Errorf("left turn: got %d", got)
	}
	if got := Orient(a, b, Pt(0, -1)); got != -1 {
		t.Errorf("right turn: got %d", got)
	}
	if got := Orient(a, b, Pt(2, 0)); got != 0 {
		t.Errorf("collinear: got %d", got)
	}
}

func TestOrientAntisymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Pt(float64(ax), float64(ay))
		b := Pt(float64(bx), float64(by))
		c := Pt(float64(cx), float64(cy))
		// Swapping two arguments flips (or preserves zero) orientation.
		return Orient(a, b, c) == -Orient(b, a, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMidpointCommutesProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Pt(ax, ay), Pt(bx, by)
		return a.Mid(b).Eq(b.Mid(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
