package geom

import (
	"fmt"
)

// Polygon is a simple polygon stored as its vertex ring, without repeating
// the first vertex. The canonical orientation is clockwise in the y-up plane
// (the paper's convention: "the edges of polygons are taken in a clockwise
// order"), which places the interior to the right of every directed edge.
// With that orientation the paper's trapezoid expression E_l sums to the
// positive area for any reference line y = l below (or not crossing) the
// polygon.
type Polygon []Point

// Poly is shorthand for constructing a Polygon from vertices.
func Poly(pts ...Point) Polygon { return Polygon(pts) }

// NumEdges returns the number of edges, equal to the number of vertices.
func (p Polygon) NumEdges() int { return len(p) }

// Edge returns the i-th directed edge; edge i runs from vertex i to vertex
// (i+1) mod n.
func (p Polygon) Edge(i int) Segment {
	j := i + 1
	if j == len(p) {
		j = 0
	}
	return Segment{A: p[i], B: p[j]}
}

// Edges returns all directed edges in ring order.
func (p Polygon) Edges() []Segment {
	es := make([]Segment, len(p))
	for i := range p {
		es[i] = p.Edge(i)
	}
	return es
}

// SignedArea returns Σ (x_B−x_A)(y_A+y_B)/2 over the polygon's edges — the
// paper's expression E_0(AB) summed along the ring. It is positive when the
// ring is clockwise (y-up) and negative when counter-clockwise.
func (p Polygon) SignedArea() float64 {
	var s float64
	for i := range p {
		e := p.Edge(i)
		s += (e.B.X - e.A.X) * (e.A.Y + e.B.Y) / 2
	}
	return s
}

// Area returns the polygon's (non-negative) area.
func (p Polygon) Area() float64 { return abs(p.SignedArea()) }

// IsClockwise reports whether the ring is in the canonical clockwise (y-up)
// orientation. Degenerate zero-area rings report false.
func (p Polygon) IsClockwise() bool { return p.SignedArea() > 0 }

// Clockwise returns p in canonical clockwise orientation, reversing the ring
// if necessary. The receiver is not modified; when already clockwise the
// receiver itself is returned.
func (p Polygon) Clockwise() Polygon {
	if len(p) < 3 || p.IsClockwise() || p.SignedArea() == 0 {
		return p
	}
	q := make(Polygon, len(p))
	for i, v := range p {
		q[len(p)-1-i] = v
	}
	return q
}

// BoundingBox returns the polygon's minimum bounding box.
func (p Polygon) BoundingBox() Rect {
	r := EmptyRect()
	for _, v := range p {
		r = r.ExtendPoint(v)
	}
	return r
}

// Centroid returns the area centroid of the polygon. Degenerate zero-area
// polygons fall back to the vertex average.
func (p Polygon) Centroid() Point {
	var cx, cy, a float64
	for i := range p {
		e := p.Edge(i)
		cr := e.A.Cross(e.B)
		cx += (e.A.X + e.B.X) * cr
		cy += (e.A.Y + e.B.Y) * cr
		a += cr
	}
	if a == 0 {
		var s Point
		for _, v := range p {
			s = s.Add(v)
		}
		return s.Scale(1 / float64(len(p)))
	}
	return Point{cx / (3 * a), cy / (3 * a)}
}

// Contains reports whether point q lies inside the polygon or on its
// boundary. It uses the winding-free even–odd ray casting rule with exact
// handling of boundary points: points on an edge or vertex are reported as
// contained (regions in the paper are closed sets).
func (p Polygon) Contains(q Point) bool {
	if len(p) < 3 {
		return false
	}
	inside := false
	for i := range p {
		e := p.Edge(i)
		// Boundary check first: collinear and within the segment box.
		if Orient(e.A, e.B, q) == 0 && onSegment(e, q) {
			return true
		}
		// Even–odd crossing test for the horizontal ray to +∞ from q.
		ay, by := e.A.Y, e.B.Y
		if (ay > q.Y) != (by > q.Y) {
			// x-coordinate of the edge at height q.Y.
			xAt := e.A.X + (q.Y-ay)/(by-ay)*(e.B.X-e.A.X)
			if xAt > q.X {
				inside = !inside
			}
		}
	}
	return inside
}

// IsSimple reports whether the polygon is simple: at least 3 vertices, no
// repeated consecutive vertices, no zero-length edges and no pair of edges
// that properly intersect (crossing, overlapping collinearly, or touching
// anywhere other than the shared vertex of consecutive edges). The check is
// the straightforward O(n²) pairwise test; polygon sizes in cardinal
// direction workloads make this entirely adequate, and validation is not on
// the computation hot path.
func (p Polygon) IsSimple() bool {
	n := len(p)
	if n < 3 {
		return false
	}
	for i := 0; i < n; i++ {
		if p.Edge(i).IsDegenerate() {
			return false
		}
	}
	for i := 0; i < n; i++ {
		ei := p.Edge(i)
		for j := i + 1; j < n; j++ {
			ej := p.Edge(j)
			adjacent := j == i+1 || (i == 0 && j == n-1)
			if adjacent {
				// Consecutive edges share exactly one endpoint; any further
				// contact (collinear fold-back) makes the ring non-simple.
				if SegmentsProperlyIntersect(ei, ej) {
					return false
				}
				continue
			}
			if SegmentsIntersect(ei, ej) {
				return false
			}
		}
	}
	return true
}

// Validate checks that the polygon is usable as a region component: finite
// coordinates, simple, and of positive area. It returns a descriptive error
// for the first violation found.
func (p Polygon) Validate() error {
	if len(p) < 3 {
		return fmt.Errorf("geom: polygon has %d vertices, need at least 3", len(p))
	}
	for i, v := range p {
		if !v.IsFinite() {
			return fmt.Errorf("geom: polygon vertex %d is not finite: %v", i, v)
		}
	}
	for i := 0; i < len(p); i++ {
		if p.Edge(i).IsDegenerate() {
			return fmt.Errorf("geom: polygon edge %d is degenerate at %v", i, p[i])
		}
	}
	if p.SignedArea() == 0 {
		return fmt.Errorf("geom: polygon has zero area")
	}
	// The naive quadratic check wins on small rings; the sweep wins once
	// rings get large (the GIS-scale inputs §3 of the paper anticipates).
	simple := p.IsSimple
	if len(p) >= 32 {
		simple = p.IsSimpleFast
	}
	if !simple() {
		return fmt.Errorf("geom: polygon is not simple (self-intersecting)")
	}
	return nil
}

// Clone returns a deep copy of the polygon.
func (p Polygon) Clone() Polygon {
	q := make(Polygon, len(p))
	copy(q, p)
	return q
}

// Translate returns the polygon shifted by the vector d.
func (p Polygon) Translate(d Point) Polygon {
	q := make(Polygon, len(p))
	for i, v := range p {
		q[i] = v.Add(d)
	}
	return q
}

// Scale returns the polygon scaled by s about the origin.
func (p Polygon) Scale(s float64) Polygon {
	q := make(Polygon, len(p))
	for i, v := range p {
		q[i] = v.Scale(s)
	}
	return q
}
