package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHasProperIntersectionBasics(t *testing.T) {
	cross := []Segment{
		Seg(Pt(0, 0), Pt(4, 4)),
		Seg(Pt(0, 4), Pt(4, 0)),
	}
	if !HasProperIntersection(cross, nil) {
		t.Error("X crossing missed")
	}
	disjoint := []Segment{
		Seg(Pt(0, 0), Pt(1, 1)),
		Seg(Pt(2, 2), Pt(3, 3)),
		Seg(Pt(5, 0), Pt(6, 1)),
	}
	if HasProperIntersection(disjoint, nil) {
		t.Error("disjoint segments reported intersecting")
	}
	// Endpoint touch counts without an adjacency exemption…
	touch := []Segment{
		Seg(Pt(0, 0), Pt(2, 2)),
		Seg(Pt(2, 2), Pt(4, 0)),
	}
	if !HasProperIntersection(touch, nil) {
		t.Error("endpoint touch missed (no adjacency)")
	}
	// …but is exempted for declared-adjacent pairs.
	adj := func(i, j int) bool { return true }
	if HasProperIntersection(touch, adj) {
		t.Error("adjacent endpoint touch should be allowed")
	}
	// Adjacent pairs still must not overlap collinearly.
	fold := []Segment{
		Seg(Pt(0, 0), Pt(4, 0)),
		Seg(Pt(4, 0), Pt(1, 0)),
	}
	if !HasProperIntersection(fold, adj) {
		t.Error("collinear fold-back of adjacent segments missed")
	}
	if HasProperIntersection(nil, nil) || HasProperIntersection(cross[:1], nil) {
		t.Error("fewer than two segments cannot intersect")
	}
}

func TestIsSimpleFastMatchesNaive(t *testing.T) {
	cases := []Polygon{
		unitSquareCW(),
		Poly(Pt(0, 0), Pt(2, 2), Pt(2, 0), Pt(0, 2)),                     // bowtie
		Poly(Pt(0, 3), Pt(1, 3), Pt(1, 1), Pt(3, 1), Pt(3, 0), Pt(0, 0)), // L
		Poly(Pt(0, 0), Pt(2, 0), Pt(1, 0), Pt(1, 2)),                     // spike
		Poly(Pt(0, 0), Pt(2, 2), Pt(4, 0), Pt(4, 4), Pt(2, 2), Pt(0, 4)), // pinch
		Poly(Pt(0, 0), Pt(1, 1)),                                         // 2-gon
		Poly(Pt(0, 0), Pt(0, 0), Pt(1, 1), Pt(1, 0)),                     // dup vertex
	}
	for i, p := range cases {
		if got, want := p.IsSimpleFast(), p.IsSimple(); got != want {
			t.Errorf("case %d: fast=%v naive=%v", i, got, want)
		}
	}
}

// Property: on random star polygons (always simple) and random vertex soups
// (often not), the sweep agrees with the naive check.
func TestIsSimpleFastAgreesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(12)
		var p Polygon
		if trial%2 == 0 {
			// Star polygon: simple by construction.
			p = make(Polygon, n)
			for i := 0; i < n; i++ {
				th := 2 * math.Pi * (float64(i) + 0.1 + 0.8*rng.Float64()) / float64(n)
				r := 1 + rng.Float64()*3
				p[i] = Pt(r*math.Cos(th), r*math.Sin(th))
			}
		} else {
			// Vertex soup on a small grid: frequently self-intersecting.
			p = make(Polygon, n)
			for i := range p {
				p[i] = Pt(float64(rng.Intn(7)), float64(rng.Intn(7)))
			}
		}
		if got, want := p.IsSimpleFast(), p.IsSimple(); got != want {
			t.Fatalf("trial %d: fast=%v naive=%v for %v", trial, got, want, p)
		}
	}
}

func TestConvexHullKnown(t *testing.T) {
	pts := []Point{
		Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4), // square corners
		Pt(2, 2), Pt(1, 3), Pt(3, 1), // interior points
		Pt(2, 0), Pt(0, 2), // collinear boundary points
	}
	h := ConvexHull(pts)
	if h == nil {
		t.Fatal("nil hull")
	}
	if len(h) != 4 {
		t.Fatalf("hull size = %d, want 4 (interior and collinear dropped): %v", len(h), h)
	}
	if !h.IsClockwise() {
		t.Error("hull not clockwise")
	}
	if h.Area() != 16 {
		t.Errorf("hull area = %v, want 16", h.Area())
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if ConvexHull([]Point{Pt(0, 0), Pt(1, 1)}) != nil {
		t.Error("two points should have no hull")
	}
	if ConvexHull([]Point{Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(3, 3)}) != nil {
		t.Error("collinear points should have no hull")
	}
	if ConvexHull([]Point{Pt(1, 1), Pt(1, 1), Pt(1, 1)}) != nil {
		t.Error("coincident points should have no hull")
	}
}

// Property: the hull contains every input point, is convex, and is invariant
// under input permutation.
func TestConvexHullProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 6 {
			return true
		}
		pts := make([]Point, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			pts = append(pts, Pt(float64(raw[i]%50), float64(raw[i+1]%50)))
		}
		h := ConvexHull(pts)
		if h == nil {
			return true // collinear or degenerate input
		}
		for _, p := range pts {
			if !h.Contains(p) {
				return false
			}
		}
		// Convexity: all right turns (clockwise).
		n := len(h)
		for i := 0; i < n; i++ {
			if Orient(h[i], h[(i+1)%n], h[(i+2)%n]) > 0 {
				return false
			}
		}
		// Permutation invariance (reverse the input).
		rev := make([]Point, len(pts))
		for i, p := range pts {
			rev[len(pts)-1-i] = p
		}
		h2 := ConvexHull(rev)
		return h2 != nil && math.Abs(h2.Area()-h.Area()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHullOfRegion(t *testing.T) {
	r := fig2RegionA() // two boxes: [0,2]×[0,3] and [5,7]×[0,2]
	h := HullOfRegion(r)
	if h == nil {
		t.Fatal("nil hull")
	}
	for _, p := range r {
		for _, v := range p {
			if !h.Contains(v) {
				t.Errorf("hull misses vertex %v", v)
			}
		}
	}
	if h.Area() <= r.Area() {
		t.Errorf("hull area %v should exceed region area %v (disconnected input)", h.Area(), r.Area())
	}
}

func BenchmarkIsSimple(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 512
	p := make(Polygon, n)
	for i := 0; i < n; i++ {
		th := 2 * math.Pi * (float64(i) + 0.1 + 0.8*rng.Float64()) / float64(n)
		r := 1 + rng.Float64()*3
		p[i] = Pt(r*math.Cos(th), r*math.Sin(th))
	}
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !p.IsSimple() {
				b.Fatal("simple polygon rejected")
			}
		}
	})
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !p.IsSimpleFast() {
				b.Fatal("simple polygon rejected")
			}
		}
	})
}
