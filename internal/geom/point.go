// Package geom provides the planar geometry substrate used by the cardinal
// direction algorithms of Skiadopoulos et al. (EDBT 2004): points, segments,
// simple polygons and composite regions (the class REG* of the paper —
// possibly disconnected regions, possibly with holes), together with the
// primitive operations the algorithms rely on (minimum bounding boxes,
// signed areas, orientation normalisation, point location and segment
// intersection).
//
// # Conventions
//
// Coordinates are float64 in a y-up Cartesian plane. Polygons are stored as
// vertex rings without repeating the first vertex; the canonical orientation
// is clockwise in the y-up plane (the paper takes polygon edges "in a
// clockwise order"), which places the polygon interior on the right-hand
// side of every directed edge. Helpers are provided to detect and normalise
// orientation.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the Euclidean plane R^2.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns the vector sum p+q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector difference p−q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by the factor s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p×q viewed as vectors.
// It is positive when q lies counter-clockwise of p.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Eq reports whether p and q are the same point (exact comparison).
func (p Point) Eq(q Point) bool { return p.X == q.X && p.Y == q.Y }

// Mid returns the midpoint of p and q. The cardinal direction algorithm of
// the paper classifies each split edge by the tile containing its midpoint.
func (p Point) Mid(q Point) Point { return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2} }

// IsFinite reports whether both coordinates are finite (not NaN or ±Inf).
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) && !math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// String renders the point as "(x, y)".
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Orient returns the orientation of the ordered triple (a, b, c):
// +1 when c lies to the left of the directed line a→b (counter-clockwise
// turn), −1 when it lies to the right (clockwise turn) and 0 when the three
// points are collinear.
func Orient(a, b, c Point) int {
	d := b.Sub(a).Cross(c.Sub(a))
	switch {
	case d > 0:
		return +1
	case d < 0:
		return -1
	default:
		return 0
	}
}
