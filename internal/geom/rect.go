package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle, used for minimum bounding boxes
// (mbb in the paper). MinX ≤ MaxX and MinY ≤ MaxY hold for every Rect
// produced by this package; a Rect may be degenerate (zero width or height)
// only when built from degenerate input.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyRect returns the identity element for Union: a rectangle that
// contains nothing and leaves any rectangle unchanged when united with it.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// IsEmpty reports whether r is the empty rectangle.
func (r Rect) IsEmpty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// Width returns MaxX − MinX.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns MaxY − MinY.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the rectangle's area; the empty rectangle has area 0.
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Width() * r.Height()
}

// Center returns the rectangle's center point. The Compute-CDR algorithm
// tests whether the center of mbb(b) lies inside a polygon of the primary
// region to detect polygons that enclose the whole bounding box.
func (r Rect) Center() Point { return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2} }

// Contains reports whether p lies in the closed rectangle.
func (r Rect) Contains(p Point) bool {
	return r.MinX <= p.X && p.X <= r.MaxX && r.MinY <= p.Y && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely within the closed rectangle r.
func (r Rect) ContainsRect(s Rect) bool {
	return r.MinX <= s.MinX && s.MaxX <= r.MaxX && r.MinY <= s.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether the closed rectangles r and s share a point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		MinX: min2(r.MinX, s.MinX), MinY: min2(r.MinY, s.MinY),
		MaxX: max2(r.MaxX, s.MaxX), MaxY: max2(r.MaxY, s.MaxY),
	}
}

// ExtendPoint returns the smallest rectangle containing r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	if r.IsEmpty() {
		return Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
	}
	return Rect{
		MinX: min2(r.MinX, p.X), MinY: min2(r.MinY, p.Y),
		MaxX: max2(r.MaxX, p.X), MaxY: max2(r.MaxY, p.Y),
	}
}

// Vertices returns the rectangle's corners in clockwise order (y-up),
// starting at the top-left corner — matching the package's canonical
// polygon orientation.
func (r Rect) Vertices() []Point {
	return []Point{
		{r.MinX, r.MaxY}, {r.MaxX, r.MaxY}, {r.MaxX, r.MinY}, {r.MinX, r.MinY},
	}
}

// String renders the rectangle as "[minx,maxx]×[miny,maxy]".
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]×[%g,%g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}
