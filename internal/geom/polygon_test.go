package geom

import (
	"math"
	"testing"
	"testing/quick"
)

// unitSquareCW is the canonical clockwise (y-up) unit square.
func unitSquareCW() Polygon {
	return Poly(Pt(0, 1), Pt(1, 1), Pt(1, 0), Pt(0, 0))
}

func TestSignedAreaOrientation(t *testing.T) {
	sq := unitSquareCW()
	if got := sq.SignedArea(); got != 1 {
		t.Errorf("clockwise unit square signed area = %v, want 1", got)
	}
	if !sq.IsClockwise() {
		t.Error("clockwise square not detected as clockwise")
	}
	ccw := Poly(Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1))
	if got := ccw.SignedArea(); got != -1 {
		t.Errorf("counter-clockwise square signed area = %v, want -1", got)
	}
	if ccw.IsClockwise() {
		t.Error("counter-clockwise square detected as clockwise")
	}
}

func TestClockwiseNormalisation(t *testing.T) {
	ccw := Poly(Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2))
	cw := ccw.Clockwise()
	if !cw.IsClockwise() {
		t.Fatal("Clockwise() did not produce a clockwise ring")
	}
	if cw.Area() != ccw.Area() {
		t.Errorf("area changed by normalisation: %v vs %v", cw.Area(), ccw.Area())
	}
	// Idempotent on already-clockwise input (and returns the receiver).
	sq := unitSquareCW()
	if got := sq.Clockwise(); &got[0] != &sq[0] {
		t.Error("Clockwise() copied an already-clockwise ring")
	}
}

func TestPolygonAreaKnownShapes(t *testing.T) {
	tri := Poly(Pt(0, 0), Pt(0, 4), Pt(3, 0)) // right triangle, legs 3 and 4
	if got := tri.Area(); got != 6 {
		t.Errorf("triangle area = %v, want 6", got)
	}
	rect := Poly(Pt(1, 5), Pt(7, 5), Pt(7, 2), Pt(1, 2))
	if got := rect.Area(); got != 18 {
		t.Errorf("rect area = %v, want 18", got)
	}
	// L-shape: 3x3 square minus 2x2 corner = 5.
	l := Poly(Pt(0, 3), Pt(1, 3), Pt(1, 1), Pt(3, 1), Pt(3, 0), Pt(0, 0))
	if got := l.Area(); got != 5 {
		t.Errorf("L-shape area = %v, want 5", got)
	}
}

func TestPolygonBoundingBox(t *testing.T) {
	p := Poly(Pt(-1, 2), Pt(3, 7), Pt(0, -5))
	bb := p.BoundingBox()
	want := Rect{MinX: -1, MinY: -5, MaxX: 3, MaxY: 7}
	if bb != want {
		t.Errorf("BoundingBox = %v, want %v", bb, want)
	}
}

func TestPolygonCentroid(t *testing.T) {
	sq := Poly(Pt(0, 2), Pt(2, 2), Pt(2, 0), Pt(0, 0))
	if got := sq.Centroid(); !got.Eq(Pt(1, 1)) {
		t.Errorf("square centroid = %v, want (1,1)", got)
	}
	tri := Poly(Pt(0, 0), Pt(0, 3), Pt(3, 0))
	c := tri.Centroid()
	if math.Abs(c.X-1) > 1e-12 || math.Abs(c.Y-1) > 1e-12 {
		t.Errorf("triangle centroid = %v, want (1,1)", c)
	}
}

func TestPolygonContains(t *testing.T) {
	sq := Poly(Pt(0, 4), Pt(4, 4), Pt(4, 0), Pt(0, 0))
	inside := []Point{Pt(2, 2), Pt(0.5, 3.5), Pt(3.999, 0.001)}
	for _, p := range inside {
		if !sq.Contains(p) {
			t.Errorf("Contains(%v) = false, want true", p)
		}
	}
	boundary := []Point{Pt(0, 0), Pt(4, 4), Pt(2, 0), Pt(0, 2), Pt(4, 2)}
	for _, p := range boundary {
		if !sq.Contains(p) {
			t.Errorf("boundary Contains(%v) = false, want true (regions are closed)", p)
		}
	}
	outside := []Point{Pt(-1, 2), Pt(5, 2), Pt(2, -0.001), Pt(2, 4.001), Pt(100, 100)}
	for _, p := range outside {
		if sq.Contains(p) {
			t.Errorf("Contains(%v) = true, want false", p)
		}
	}
}

func TestPolygonContainsConcave(t *testing.T) {
	// U-shape opening upward.
	u := Poly(Pt(0, 3), Pt(1, 3), Pt(1, 1), Pt(2, 1), Pt(2, 3), Pt(3, 3), Pt(3, 0), Pt(0, 0))
	if !u.Contains(Pt(0.5, 2)) {
		t.Error("point in left arm should be inside")
	}
	if u.Contains(Pt(1.5, 2)) {
		t.Error("point in the notch should be outside")
	}
	if !u.Contains(Pt(1.5, 0.5)) {
		t.Error("point in the base should be inside")
	}
}

func TestPolygonContainsVertexRayGrazing(t *testing.T) {
	// A ray through a vertex must not double count: diamond.
	d := Poly(Pt(0, 1), Pt(1, 2), Pt(2, 1), Pt(1, 0)).Clockwise()
	if !d.Contains(Pt(0.5, 1)) { // ray passes through vertex (2,1)... interior point
		t.Error("interior point at vertex height should be inside")
	}
	if d.Contains(Pt(-1, 1)) {
		t.Error("exterior point at vertex height should be outside")
	}
	if d.Contains(Pt(3, 1)) {
		t.Error("exterior point right of the diamond should be outside")
	}
}

func TestIsSimple(t *testing.T) {
	if !unitSquareCW().IsSimple() {
		t.Error("square should be simple")
	}
	bowtie := Poly(Pt(0, 0), Pt(2, 2), Pt(2, 0), Pt(0, 2))
	if bowtie.IsSimple() {
		t.Error("bowtie should not be simple")
	}
	if Poly(Pt(0, 0), Pt(1, 1)).IsSimple() {
		t.Error("2-gon should not be simple")
	}
	dupEdge := Poly(Pt(0, 0), Pt(0, 0), Pt(1, 1), Pt(1, 0))
	if dupEdge.IsSimple() {
		t.Error("zero-length edge should not be simple")
	}
	// Spike: consecutive edges folding back on themselves.
	spike := Poly(Pt(0, 0), Pt(2, 0), Pt(1, 0), Pt(1, 2))
	if spike.IsSimple() {
		t.Error("fold-back spike should not be simple")
	}
	// Touching (pinch) at a vertex of non-adjacent edges.
	pinch := Poly(Pt(0, 0), Pt(2, 2), Pt(4, 0), Pt(4, 4), Pt(2, 2), Pt(0, 4))
	if pinch.IsSimple() {
		t.Error("pinched ring should not be simple")
	}
}

func TestPolygonValidate(t *testing.T) {
	if err := unitSquareCW().Validate(); err != nil {
		t.Errorf("square Validate: %v", err)
	}
	if err := Poly(Pt(0, 0), Pt(1, 1)).Validate(); err == nil {
		t.Error("2-gon should fail validation")
	}
	if err := Poly(Pt(0, 0), Pt(1, 1), Pt(2, 2)).Validate(); err == nil {
		t.Error("zero-area collinear triangle should fail validation")
	}
	if err := Poly(Pt(0, 0), Pt(math.NaN(), 1), Pt(1, 0)).Validate(); err == nil {
		t.Error("NaN vertex should fail validation")
	}
	if err := Poly(Pt(0, 0), Pt(2, 2), Pt(2, 0), Pt(0, 2)).Validate(); err == nil {
		t.Error("bowtie should fail validation")
	}
}

func TestTranslateScaleClone(t *testing.T) {
	sq := unitSquareCW()
	moved := sq.Translate(Pt(10, -5))
	if got := moved.BoundingBox(); got != (Rect{10, -5, 11, -4}) {
		t.Errorf("Translate box = %v", got)
	}
	if moved.Area() != sq.Area() {
		t.Error("translation changed area")
	}
	scaled := sq.Scale(3)
	if scaled.Area() != 9 {
		t.Errorf("Scale area = %v, want 9", scaled.Area())
	}
	cl := sq.Clone()
	cl[0] = Pt(99, 99)
	if sq[0].Eq(Pt(99, 99)) {
		t.Error("Clone aliases the receiver")
	}
}

// Property: translating a polygon never changes its signed area, and scaling
// by s multiplies area by s².
func TestAreaInvarianceProperty(t *testing.T) {
	f := func(dx, dy int8, sRaw uint8) bool {
		sq := Poly(Pt(0, 2), Pt(3, 2), Pt(3, 0), Pt(0, 0))
		d := Pt(float64(dx), float64(dy))
		if sq.Translate(d).SignedArea() != sq.SignedArea() {
			return false
		}
		s := 1 + float64(sRaw%7)
		got := sq.Scale(s).Area()
		want := sq.Area() * s * s
		return math.Abs(got-want) < 1e-9*math.Max(1, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the centroid of a convex polygon lies inside it.
func TestCentroidInsideConvexProperty(t *testing.T) {
	f := func(w8, h8 uint8, dx, dy int8) bool {
		w := 1 + float64(w8%50)
		h := 1 + float64(h8%50)
		p := Poly(Pt(0, h), Pt(w, h), Pt(w, 0), Pt(0, 0)).Translate(Pt(float64(dx), float64(dy)))
		return p.Contains(p.Centroid())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
