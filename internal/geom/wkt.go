package geom

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseWKT parses a Well-Known Text geometry into a REG* region. Supported
// types — the ones GIS region data arrives in:
//
//	POLYGON ((outer), (hole), …)
//	MULTIPOLYGON (((outer), (hole)…), ((outer)…), …)
//
// Rings are closed per WKT convention (first point repeated last); holes
// are converted to the paper's hole-free representation with
// DecomposeWithHoles. Case and whitespace are insignificant.
func ParseWKT(s string) (Region, error) {
	p := &wktParser{src: s}
	p.skipSpace()
	kw := p.keyword()
	var out Region
	switch strings.ToUpper(kw) {
	case "POLYGON":
		poly, err := p.polygonBody()
		if err != nil {
			return nil, err
		}
		out = poly
	case "MULTIPOLYGON":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		for {
			poly, err := p.polygonBody()
			if err != nil {
				return nil, err
			}
			out = append(out, poly...)
			p.skipSpace()
			if p.eat(',') {
				continue
			}
			if err := p.expect(')'); err != nil {
				return nil, err
			}
			break
		}
	case "":
		return nil, fmt.Errorf("geom: empty WKT input")
	default:
		return nil, fmt.Errorf("geom: unsupported WKT type %q (POLYGON and MULTIPOLYGON are supported)", kw)
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("geom: trailing WKT input at offset %d", p.pos)
	}
	return out, nil
}

// FormatWKT renders a region as a MULTIPOLYGON of its (hole-free) simple
// polygons, closing each ring per WKT convention. ParseWKT(FormatWKT(r))
// reproduces the region.
func FormatWKT(r Region) string {
	var sb strings.Builder
	sb.WriteString("MULTIPOLYGON (")
	for i, p := range r {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("((")
		for j := 0; j <= len(p); j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			v := p[j%len(p)]
			sb.WriteString(trimFloat(v.X))
			sb.WriteByte(' ')
			sb.WriteString(trimFloat(v.Y))
		}
		sb.WriteString("))")
	}
	sb.WriteString(")")
	return sb.String()
}

func trimFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

type wktParser struct {
	src string
	pos int
}

func (p *wktParser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *wktParser) keyword() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') {
			p.pos++
		} else {
			break
		}
	}
	return p.src[start:p.pos]
}

func (p *wktParser) eat(c byte) bool {
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *wktParser) expect(c byte) error {
	if !p.eat(c) {
		got := "end of input"
		if p.pos < len(p.src) {
			got = fmt.Sprintf("%q", p.src[p.pos])
		}
		return fmt.Errorf("geom: WKT: expected %q at offset %d, found %s", c, p.pos, got)
	}
	return nil
}

func (p *wktParser) number() (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' {
			p.pos++
		} else {
			break
		}
	}
	if start == p.pos {
		return 0, fmt.Errorf("geom: WKT: expected a number at offset %d", p.pos)
	}
	v, err := strconv.ParseFloat(p.src[start:p.pos], 64)
	if err != nil {
		return 0, fmt.Errorf("geom: WKT: bad number %q: %w", p.src[start:p.pos], err)
	}
	return v, nil
}

// ring parses "( x y, x y, … )" and returns the unclosed vertex ring.
func (p *wktParser) ring() (Polygon, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var out Polygon
	for {
		x, err := p.number()
		if err != nil {
			return nil, err
		}
		y, err := p.number()
		if err != nil {
			return nil, err
		}
		out = append(out, Pt(x, y))
		if p.eat(',') {
			continue
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		break
	}
	// Drop the closing duplicate point if present.
	if len(out) > 1 && out[0].Eq(out[len(out)-1]) {
		out = out[:len(out)-1]
	}
	if len(out) < 3 {
		return nil, fmt.Errorf("geom: WKT ring has %d distinct points, need at least 3", len(out))
	}
	return out, nil
}

// polygonBody parses "((outer), (hole), …)" and decomposes holes away.
func (p *wktParser) polygonBody() (Region, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	outer, err := p.ring()
	if err != nil {
		return nil, err
	}
	var holes []Polygon
	for p.eat(',') {
		h, err := p.ring()
		if err != nil {
			return nil, err
		}
		holes = append(holes, h)
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return DecomposeWithHoles(outer, holes)
}
