package geom

import (
	"encoding/json"
	"fmt"
)

// geoJSONGeometry is the wire form of a GeoJSON geometry object (RFC 7946)
// restricted to the polygonal types region data arrives in.
type geoJSONGeometry struct {
	Type        string          `json:"type"`
	Coordinates json.RawMessage `json:"coordinates"`
}

// ParseGeoJSON parses a GeoJSON geometry object of type "Polygon" or
// "MultiPolygon" into a REG* region. Per RFC 7946 each polygon is a list of
// linear rings — the first exterior, the rest holes — with the first
// position repeated at the end; holes are decomposed away with
// DecomposeWithHoles so the result is the paper's hole-free representation.
func ParseGeoJSON(data []byte) (Region, error) {
	var g geoJSONGeometry
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("geom: decoding GeoJSON: %w", err)
	}
	switch g.Type {
	case "Polygon":
		var rings [][][2]float64
		if err := json.Unmarshal(g.Coordinates, &rings); err != nil {
			return nil, fmt.Errorf("geom: Polygon coordinates: %w", err)
		}
		return geoJSONPolygon(rings)
	case "MultiPolygon":
		var polys [][][][2]float64
		if err := json.Unmarshal(g.Coordinates, &polys); err != nil {
			return nil, fmt.Errorf("geom: MultiPolygon coordinates: %w", err)
		}
		var out Region
		for i, rings := range polys {
			r, err := geoJSONPolygon(rings)
			if err != nil {
				return nil, fmt.Errorf("geom: MultiPolygon member %d: %w", i, err)
			}
			out = append(out, r...)
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("geom: empty MultiPolygon")
		}
		return out, nil
	default:
		return nil, fmt.Errorf("geom: unsupported GeoJSON type %q (Polygon and MultiPolygon are supported)", g.Type)
	}
}

// geoJSONPolygon converts one GeoJSON polygon (outer ring + holes) into
// REG* polygons.
func geoJSONPolygon(rings [][][2]float64) (Region, error) {
	if len(rings) == 0 {
		return nil, fmt.Errorf("geom: polygon has no rings")
	}
	convert := func(ring [][2]float64) (Polygon, error) {
		p := make(Polygon, 0, len(ring))
		for _, c := range ring {
			p = append(p, Pt(c[0], c[1]))
		}
		// Drop the mandated closing duplicate.
		if len(p) > 1 && p[0].Eq(p[len(p)-1]) {
			p = p[:len(p)-1]
		}
		if len(p) < 3 {
			return nil, fmt.Errorf("geom: ring has %d distinct positions, need at least 3", len(p))
		}
		return p, nil
	}
	outer, err := convert(rings[0])
	if err != nil {
		return nil, err
	}
	holes := make([]Polygon, 0, len(rings)-1)
	for i, ring := range rings[1:] {
		h, err := convert(ring)
		if err != nil {
			return nil, fmt.Errorf("geom: hole %d: %w", i, err)
		}
		holes = append(holes, h)
	}
	return DecomposeWithHoles(outer, holes)
}

// FormatGeoJSON renders a region as a GeoJSON MultiPolygon of its
// (hole-free) simple polygons. RFC 7946 asks for counter-clockwise exterior
// rings, so the canonical clockwise rings are reversed on output;
// ParseGeoJSON(FormatGeoJSON(r)) reproduces the region.
func FormatGeoJSON(r Region) ([]byte, error) {
	polys := make([][][][2]float64, 0, len(r))
	for _, p := range r {
		ring := make([][2]float64, 0, len(p)+1)
		for i := len(p) - 1; i >= 0; i-- { // reverse: clockwise → CCW
			ring = append(ring, [2]float64{p[i].X, p[i].Y})
		}
		ring = append(ring, ring[0]) // close per RFC 7946
		polys = append(polys, [][][2]float64{ring})
	}
	coords, err := json.Marshal(polys)
	if err != nil {
		return nil, fmt.Errorf("geom: encoding coordinates: %w", err)
	}
	return json.Marshal(geoJSONGeometry{Type: "MultiPolygon", Coordinates: coords})
}
