package geom

import (
	"math"
	"testing"
)

func TestParseGeoJSONPolygon(t *testing.T) {
	data := []byte(`{"type":"Polygon","coordinates":[[[0,0],[4,0],[4,4],[0,4],[0,0]]]}`)
	r, err := ParseGeoJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 1 || r.Area() != 16 {
		t.Errorf("pieces=%d area=%v", len(r), r.Area())
	}
}

func TestParseGeoJSONPolygonWithHole(t *testing.T) {
	data := []byte(`{"type":"Polygon","coordinates":[
		[[0,0],[4,0],[4,4],[0,4],[0,0]],
		[[1,1],[3,1],[3,3],[1,3],[1,1]]
	]}`)
	r, err := ParseGeoJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Area()-12) > 1e-9 {
		t.Errorf("area = %v, want 12", r.Area())
	}
	if r.Contains(Pt(2, 2)) {
		t.Error("hole centre contained")
	}
}

func TestParseGeoJSONMultiPolygon(t *testing.T) {
	data := []byte(`{"type":"MultiPolygon","coordinates":[
		[[[0,0],[1,0],[1,1],[0,1],[0,0]]],
		[[[5,5],[7,5],[7,7],[5,7],[5,5]]]
	]}`)
	r, err := ParseGeoJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 || math.Abs(r.Area()-5) > 1e-9 {
		t.Errorf("pieces=%d area=%v", len(r), r.Area())
	}
}

func TestParseGeoJSONErrors(t *testing.T) {
	bad := []string{
		`not json`,
		`{"type":"Point","coordinates":[0,0]}`,
		`{"type":"Polygon","coordinates":[]}`,
		`{"type":"Polygon","coordinates":[[[0,0],[1,1]]]}`,
		`{"type":"Polygon","coordinates":"nope"}`,
		`{"type":"MultiPolygon","coordinates":[]}`,
		`{"type":"MultiPolygon","coordinates":[[[[0,0],[2,2],[2,0],[0,2],[0,0]]]]}`, // bowtie
	}
	for _, s := range bad {
		if _, err := ParseGeoJSON([]byte(s)); err == nil {
			t.Errorf("ParseGeoJSON(%q) should fail", s)
		}
	}
}

func TestGeoJSONRoundtrip(t *testing.T) {
	orig := Rgn(
		Poly(Pt(0, 4), Pt(4, 4), Pt(4, 0), Pt(0, 0)),
		Poly(Pt(6, 1), Pt(7, 2), Pt(8, 0)),
	)
	data, err := FormatGeoJSON(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseGeoJSON(data)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, data)
	}
	if len(back) != len(orig) {
		t.Fatalf("pieces = %d, want %d", len(back), len(orig))
	}
	if math.Abs(back.Area()-orig.Area()) > 1e-9 {
		t.Errorf("area %v != %v", back.Area(), orig.Area())
	}
	// Output rings are CCW per RFC 7946 (they come back normalised).
	for i, p := range back {
		if !p.IsClockwise() {
			t.Errorf("piece %d not re-normalised clockwise", i)
		}
	}
}

func TestGeoJSONWKTAgree(t *testing.T) {
	// The same polygon-with-hole via both interchange formats yields the
	// same region.
	gj, err := ParseGeoJSON([]byte(`{"type":"Polygon","coordinates":[
		[[0,0],[8,0],[8,8],[0,8],[0,0]],
		[[2,2],[6,2],[6,6],[2,6],[2,2]]
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	wkt, err := ParseWKT("POLYGON ((0 0, 8 0, 8 8, 0 8), (2 2, 6 2, 6 6, 2 6))")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gj.Area()-wkt.Area()) > 1e-9 {
		t.Errorf("areas differ: %v vs %v", gj.Area(), wkt.Area())
	}
	for _, p := range []Point{Pt(1, 1), Pt(4, 1), Pt(7, 7)} {
		if gj.Contains(p) != wkt.Contains(p) {
			t.Errorf("containment differs at %v", p)
		}
	}
	if gj.Contains(Pt(4, 4)) || wkt.Contains(Pt(4, 4)) {
		t.Error("hole centre contained")
	}
}
