package geom

import (
	"math"
	"math/rand"
	"testing"
)

// noisyRing builds a dense star-shaped ring around (cx,cy) with base radius
// r, per-vertex radial noise of amplitude amp, and n vertices — the shape
// class simplification is for.
func noisyRing(rng *rand.Rand, cx, cy, r, amp float64, n int) Polygon {
	p := make(Polygon, n)
	for i := 0; i < n; i++ {
		ang := 2 * math.Pi * float64(i) / float64(n)
		rad := r + amp*(2*rng.Float64()-1)
		p[i] = Pt(cx+rad*math.Cos(ang), cy+rad*math.Sin(ang))
	}
	return p.Clockwise()
}

// hausdorffRings approximates the directed Hausdorff distance from ring a
// to ring b by sampling k points per edge of a and measuring each against
// every edge of b.
func hausdorffRings(a, b Polygon, k int) float64 {
	worst := 0.0
	for i := 0; i < len(a); i++ {
		e := a.Edge(i)
		for s := 0; s <= k; s++ {
			t := float64(s) / float64(k)
			q := Pt(e.A.X+t*(e.B.X-e.A.X), e.A.Y+t*(e.B.Y-e.A.Y))
			best := math.Inf(1)
			for j := 0; j < len(b); j++ {
				f := b.Edge(j)
				if d := distPointSeg(q, f.A, f.B); d < best {
					best = d
				}
			}
			if best > worst {
				worst = best
			}
		}
	}
	return worst
}

func TestSimplifyPolygonGuarantees(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const eps = 0.15
	for trial := 0; trial < 50; trial++ {
		p := noisyRing(rng, rng.Float64()*20-10, rng.Float64()*20-10, 3+rng.Float64()*4, 0.3, 24+rng.Intn(80))
		s := SimplifyPolygon(p, eps)
		if len(s) < 3 {
			t.Fatalf("trial %d: simplified to %d vertices", trial, len(s))
		}
		// Vertex subset in ring order.
		j := 0
		for i := 0; i < len(p) && j < len(s); i++ {
			if p[i] == s[j] {
				j++
			}
		}
		// The simplified ring may start at a different vertex than p; rotate
		// s to start at its first vertex's position in p before checking.
		if j != len(s) {
			start := -1
			for i, v := range p {
				if v == s[0] {
					start = i
					break
				}
			}
			if start < 0 {
				t.Fatalf("trial %d: simplified vertex %v not in original", trial, s[0])
			}
			j = 0
			for i := 0; i < len(p) && j < len(s); i++ {
				if p[(start+i)%len(p)] == s[j] {
					j++
				}
			}
			if j != len(s) {
				t.Fatalf("trial %d: simplified vertices are not an ordered subset", trial)
			}
		}
		// Exact bounding box preservation.
		if p.BoundingBox() != s.BoundingBox() {
			t.Fatalf("trial %d: bounding box changed: %v vs %v", trial, p.BoundingBox(), s.BoundingBox())
		}
		// Hausdorff ≤ eps both directions (dense sampling, small slack for
		// the sampling itself).
		const slack = 1e-9
		if d := hausdorffRings(p, s, 8); d > eps+slack {
			t.Fatalf("trial %d: original→simplified Hausdorff %g > eps %g", trial, d, eps)
		}
		if d := hausdorffRings(s, p, 8); d > eps+slack {
			t.Fatalf("trial %d: simplified→original Hausdorff %g > eps %g", trial, d, eps)
		}
	}
}

func TestSimplifyPolygonReduces(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := noisyRing(rng, 0, 0, 5, 0.05, 200)
	s := SimplifyPolygon(p, 0.2)
	if len(s) >= len(p)/2 {
		t.Fatalf("expected substantial reduction, got %d of %d vertices", len(s), len(p))
	}
}

func TestSimplifyPolygonEdgeCases(t *testing.T) {
	tri := Poly(Pt(0, 0), Pt(2, 4), Pt(4, 0))
	if got := SimplifyPolygon(tri, 1); len(got) != 3 {
		t.Fatalf("triangle must be untouched, got %d vertices", len(got))
	}
	sq := Poly(Pt(0, 0), Pt(0, 4), Pt(4, 4), Pt(4, 0))
	if got := SimplifyPolygon(sq, 10); len(got) != 4 {
		t.Fatalf("quad must be untouched, got %d vertices", len(got))
	}
	rng := rand.New(rand.NewSource(3))
	p := noisyRing(rng, 0, 0, 5, 0.3, 50)
	if got := SimplifyPolygon(p, 0); len(got) != len(p) {
		t.Fatalf("eps=0 must be a no-op")
	}
	// A near-collinear sliver must not collapse below a ring.
	sliver := Poly(Pt(0, 0), Pt(1, 1e-9), Pt(2, 0), Pt(3, 1e-9), Pt(4, 0), Pt(2, -1e-9))
	if got := SimplifyPolygon(sliver, 1); len(got) < 3 {
		t.Fatalf("sliver collapsed to %d vertices", len(got))
	}
}

func TestSimplifyRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	r := Rgn(noisyRing(rng, 0, 0, 5, 0.2, 60), noisyRing(rng, 20, 0, 3, 0.2, 40))
	s := SimplifyRegion(r, 0.25)
	if len(s) != 2 {
		t.Fatalf("polygon count changed")
	}
	if r.BoundingBox() != s.BoundingBox() {
		t.Fatalf("region bounding box changed")
	}
	if s.NumEdges() >= r.NumEdges() {
		t.Fatalf("no reduction: %d vs %d edges", s.NumEdges(), r.NumEdges())
	}
	// eps ≤ 0 returns the region unchanged (same backing storage).
	if u := SimplifyRegion(r, 0); u.NumEdges() != r.NumEdges() {
		t.Fatalf("eps=0 must be a no-op")
	}
}
