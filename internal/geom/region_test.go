package geom

import (
	"math"
	"testing"
)

// fig2RegionA reproduces region a = a1 ∪ a2 of Fig. 2 of the paper in
// spirit: a disconnected region of two components.
func fig2RegionA() Region {
	a1 := Poly(Pt(0, 3), Pt(2, 3), Pt(2, 0), Pt(0, 0))
	a2 := Poly(Pt(5, 2), Pt(7, 2), Pt(7, 0), Pt(5, 0))
	return Rgn(a1, a2)
}

// ringWithHole builds a square ring (outer 4×4, inner hole 2×2) decomposed
// into two simple polygons sharing boundary segments — the representation
// the paper uses for regions with holes (Fig. 2, region b).
func ringWithHole() Region {
	// Left half (C-shape) and right half (mirrored C), splitting the ring
	// along x=2 above and below the hole.
	left := Poly(Pt(0, 4), Pt(2, 4), Pt(2, 3), Pt(1, 3), Pt(1, 1), Pt(2, 1), Pt(2, 0), Pt(0, 0))
	right := Poly(Pt(2, 4), Pt(4, 4), Pt(4, 0), Pt(2, 0), Pt(2, 1), Pt(3, 1), Pt(3, 3), Pt(2, 3))
	return Rgn(left, right)
}

func TestRegionNumEdges(t *testing.T) {
	r := fig2RegionA()
	if got := r.NumEdges(); got != 8 {
		t.Errorf("NumEdges = %d, want 8", got)
	}
}

func TestRegionAreaAndBox(t *testing.T) {
	r := fig2RegionA()
	if got := r.Area(); got != 6+4 {
		t.Errorf("Area = %v, want 10", got)
	}
	if got := r.BoundingBox(); got != (Rect{0, 0, 7, 3}) {
		t.Errorf("BoundingBox = %v", got)
	}
}

func TestRingWithHole(t *testing.T) {
	r := ringWithHole()
	if err := r.ValidateStrict(); err != nil {
		t.Fatalf("ring with hole should validate: %v", err)
	}
	if got := r.Area(); got != 16-4 {
		t.Errorf("ring area = %v, want 12", got)
	}
	if !r.Contains(Pt(0.5, 0.5)) {
		t.Error("ring material should contain (0.5,0.5)")
	}
	if r.Contains(Pt(2, 2)) {
		t.Error("hole centre should not be contained")
	}
	if !r.Contains(Pt(2, 3)) { // on the shared split boundary
		t.Error("shared boundary point should be contained")
	}
}

func TestRegionContainsDisconnected(t *testing.T) {
	r := fig2RegionA()
	if !r.Contains(Pt(1, 1)) || !r.Contains(Pt(6, 1)) {
		t.Error("points in components should be contained")
	}
	if r.Contains(Pt(3.5, 1)) {
		t.Error("point in the gap should not be contained")
	}
}

func TestRegionValidate(t *testing.T) {
	if err := fig2RegionA().Validate(); err != nil {
		t.Errorf("valid region rejected: %v", err)
	}
	if err := Rgn().Validate(); err == nil {
		t.Error("empty region should be rejected (regions are non-empty)")
	}
	bad := Rgn(Poly(Pt(0, 0), Pt(2, 2), Pt(2, 0), Pt(0, 2)))
	if err := bad.Validate(); err == nil {
		t.Error("region with bowtie polygon should be rejected")
	}
}

func TestRegionValidateStrictOverlap(t *testing.T) {
	a := unitSquareCW()
	b := unitSquareCW().Translate(Pt(0.5, 0.5))
	if err := Rgn(a, b).ValidateStrict(); err == nil {
		t.Error("overlapping polygons should fail strict validation")
	}
	// Containment without boundary crossing.
	big := Poly(Pt(0, 10), Pt(10, 10), Pt(10, 0), Pt(0, 0))
	small := Poly(Pt(4, 6), Pt(6, 6), Pt(6, 4), Pt(4, 4))
	if err := Rgn(big, small).ValidateStrict(); err == nil {
		t.Error("contained polygon should fail strict validation")
	}
	// Disjoint and shared-boundary cases pass.
	if err := fig2RegionA().ValidateStrict(); err != nil {
		t.Errorf("disjoint components should pass: %v", err)
	}
	touching := Rgn(unitSquareCW(), unitSquareCW().Translate(Pt(1, 0)))
	if err := touching.ValidateStrict(); err != nil {
		t.Errorf("edge-sharing components should pass: %v", err)
	}
}

func TestRegionTransforms(t *testing.T) {
	r := fig2RegionA()
	moved := r.Translate(Pt(100, 100))
	if math.Abs(moved.Area()-r.Area()) > 1e-12 {
		t.Error("translate changed area")
	}
	if moved.BoundingBox() != (Rect{100, 100, 107, 103}) {
		t.Errorf("moved box = %v", moved.BoundingBox())
	}
	scaled := r.Scale(2)
	if scaled.Area() != 4*r.Area() {
		t.Errorf("scaled area = %v", scaled.Area())
	}
	cl := r.Clone()
	cl[0][0] = Pt(-999, -999)
	if r[0][0].Eq(Pt(-999, -999)) {
		t.Error("Clone aliases polygons")
	}
}

func TestRegionClockwise(t *testing.T) {
	ccw := Poly(Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1))
	r := Rgn(ccw, unitSquareCW()).Clockwise()
	for i, p := range r {
		if !p.IsClockwise() {
			t.Errorf("polygon %d not clockwise after normalisation", i)
		}
	}
}
