package geom

import (
	"fmt"
	"sort"
)

// DecomposeWithHoles converts a polygon-with-holes (the representation GIS
// interchange formats use: one outer ring, zero or more hole rings) into the
// paper's REG* representation: a set of simple polygons with pairwise
// disjoint interiors whose union is the outer polygon minus the holes —
// exactly how Fig. 2 of the paper represents region b.
//
// The decomposition is by vertical slabs: the plane is cut at every vertex
// x-coordinate; inside one slab no edge endpoints occur, so the region
// restricted to the slab is a stack of disjoint trapezoids delimited by
// consecutive edge crossings (even–odd rule). Trapezoids of adjacent slabs
// share boundary segments only, which REG* explicitly permits.
//
// Requirements: the outer ring must be simple with positive area; holes
// must be simple, lie strictly inside the outer ring (no boundary contact)
// and be pairwise disjoint. Violations are detected and reported — the
// sweep-based nesting check keeps malformed interchange data from producing
// self-intersecting pieces.
func DecomposeWithHoles(outer Polygon, holes []Polygon) (Region, error) {
	if err := outer.Validate(); err != nil {
		return nil, fmt.Errorf("geom: outer ring: %w", err)
	}
	for i, h := range holes {
		if err := h.Validate(); err != nil {
			return nil, fmt.Errorf("geom: hole %d: %w", i, err)
		}
		if !outer.BoundingBox().ContainsRect(h.BoundingBox()) {
			return nil, fmt.Errorf("geom: hole %d escapes the outer ring's bounding box", i)
		}
	}
	if len(holes) == 0 {
		return Region{outer.Clockwise()}, nil
	}
	// Nesting validation: ring boundaries may not touch at all (a hole
	// tangent to the outer ring or to another hole is rejected — the
	// trapezoid pairing below needs a consistent vertical order of
	// crossings within each slab, which boundary contact would break),
	// every hole must lie strictly inside the outer ring, and holes must
	// be pairwise disjoint.
	if err := checkNesting(outer, holes); err != nil {
		return nil, err
	}

	// All rings contribute edges; the even–odd rule below handles the
	// inside/outside bookkeeping regardless of ring orientation.
	rings := make([]Polygon, 0, 1+len(holes))
	rings = append(rings, outer)
	rings = append(rings, holes...)

	// Slab boundaries: every distinct vertex x.
	xsSet := map[float64]struct{}{}
	for _, r := range rings {
		for _, v := range r {
			xsSet[v.X] = struct{}{}
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	var out Region
	for si := 0; si+1 < len(xs); si++ {
		x1, x2 := xs[si], xs[si+1]
		if x2 <= x1 {
			continue
		}
		// Collect the y-coordinates at x1, x2 of every edge spanning the
		// slab, ordered by y at the slab midline.
		type crossing struct {
			y1, y2, ym float64
		}
		var cs []crossing
		for _, r := range rings {
			for i := 0; i < r.NumEdges(); i++ {
				e := r.Edge(i)
				lo, hi := minmax(e.A.X, e.B.X)
				if lo > x1 || hi < x2 {
					continue // edge does not span the whole slab
				}
				if e.A.X == e.B.X {
					continue // vertical edge on a slab boundary
				}
				t1 := (x1 - e.A.X) / (e.B.X - e.A.X)
				t2 := (x2 - e.A.X) / (e.B.X - e.A.X)
				y1 := e.A.Y + t1*(e.B.Y-e.A.Y)
				y2 := e.A.Y + t2*(e.B.Y-e.A.Y)
				cs = append(cs, crossing{y1: y1, y2: y2, ym: (y1 + y2) / 2})
			}
		}
		if len(cs)%2 != 0 {
			return nil, fmt.Errorf("geom: odd crossing count in slab [%g,%g] — rings are not well-nested", x1, x2)
		}
		sort.Slice(cs, func(a, b int) bool { return cs[a].ym < cs[b].ym })
		// Even–odd pairing: material between crossings 0–1, 2–3, …
		for k := 0; k+1 < len(cs); k += 2 {
			lo, hi := cs[k], cs[k+1]
			// Clockwise trapezoid (y-up): top-left, top-right, bottom-right,
			// bottom-left; degenerate sides (triangles) collapse naturally.
			quad := Polygon{
				Pt(x1, hi.y1), Pt(x2, hi.y2), Pt(x2, lo.y2), Pt(x1, lo.y1),
			}
			quad = dedupeVertices(quad)
			if len(quad) >= 3 && quad.Area() > 0 {
				out = append(out, quad.Clockwise())
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("geom: decomposition produced no material (holes cover the outer ring?)")
	}
	return out, nil
}

// checkNesting verifies that ring boundaries are pairwise non-touching,
// every hole lies strictly inside the outer ring, and holes are pairwise
// disjoint.
func checkNesting(outer Polygon, holes []Polygon) error {
	var segs []Segment
	var tags []ringEdge
	addRing(&segs, &tags, outer, 0)
	for i, h := range holes {
		addRing(&segs, &tags, h, i+1)
	}
	ringSize := func(r int) int {
		if r == 0 {
			return len(outer)
		}
		return len(holes[r-1])
	}
	adjacent := func(i, j int) bool {
		a, b := tags[i], tags[j]
		if a.ring != b.ring {
			return false
		}
		n := ringSize(a.ring)
		d := a.idx - b.idx
		if d < 0 {
			d = -d
		}
		return d == 1 || d == n-1
	}
	if HasProperIntersection(segs, adjacent) {
		return fmt.Errorf("geom: ring boundaries touch or cross — holes must be strictly interior and pairwise disjoint")
	}
	for i, h := range holes {
		v := h[0]
		if !outer.Contains(v) || onBoundary(outer, v) {
			return fmt.Errorf("geom: hole %d is not strictly inside the outer ring", i)
		}
		for j, other := range holes {
			if i == j {
				continue
			}
			if other.Contains(v) && !onBoundary(other, v) {
				return fmt.Errorf("geom: holes %d and %d are nested", j, i)
			}
		}
	}
	return nil
}

// ringEdge tags a segment with its source ring (0 = outer, 1… = holes) and
// edge index, for adjacency exemptions during nesting validation.
type ringEdge struct {
	ring int
	idx  int
}

func addRing(segs *[]Segment, tags *[]ringEdge, p Polygon, ring int) {
	for i := 0; i < p.NumEdges(); i++ {
		*segs = append(*segs, p.Edge(i))
		*tags = append(*tags, ringEdge{ring, i})
	}
}

// dedupeVertices removes consecutive duplicate vertices including the
// wrap-around pair.
func dedupeVertices(p Polygon) Polygon {
	out := p[:0]
	for _, v := range p {
		if len(out) == 0 || !out[len(out)-1].Eq(v) {
			out = append(out, v)
		}
	}
	for len(out) > 1 && out[0].Eq(out[len(out)-1]) {
		out = out[:len(out)-1]
	}
	return out
}
