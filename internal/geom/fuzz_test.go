package geom

import (
	"math"
	"testing"
)

// FuzzParseWKT checks the WKT parser never panics and that accepted input
// roundtrips area-exactly through FormatWKT.
func FuzzParseWKT(f *testing.F) {
	for _, seed := range []string{
		"POLYGON ((0 0, 0 4, 4 4, 4 0, 0 0))",
		"POLYGON ((0 0, 0 4, 4 4, 4 0), (1 1, 1 3, 3 3, 3 1))",
		"MULTIPOLYGON (((0 0, 0 1, 1 1, 1 0)), ((5 5, 5 7, 7 7, 7 5)))",
		"polygon((0 0,0 4,4 4,4 0))",
		"", "POLYGON", "POLYGON ((", "POLYGON ((0 0))", "LINESTRING (0 0, 1 1)",
		"POLYGON ((0 0, 0 1e9, 1e9 1e9, 1e9 0))",
		"POLYGON ((0 0, 0 4, 4 4, 4 0)) trailing",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := ParseWKT(s)
		if err != nil {
			return
		}
		if len(r) == 0 {
			t.Fatalf("ParseWKT(%q) returned empty region without error", s)
		}
		area := r.Area()
		if math.IsNaN(area) || math.IsInf(area, 0) {
			// Fuzz can feed huge coordinates whose area overflows; that is
			// an input-domain issue, not a parser bug — but NaN from
			// finite inputs would be.
			for _, p := range r {
				for _, v := range p {
					if !v.IsFinite() {
						return
					}
				}
			}
			if math.IsNaN(area) {
				t.Fatalf("finite input produced NaN area: %q", s)
			}
			return
		}
		back, err := ParseWKT(FormatWKT(r))
		if err != nil {
			t.Fatalf("reparse of formatted WKT failed for %q: %v", s, err)
		}
		if math.Abs(back.Area()-area) > 1e-9*math.Max(1, area) {
			t.Fatalf("roundtrip area drift for %q: %v vs %v", s, area, back.Area())
		}
	})
}
