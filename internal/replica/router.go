package replica

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// RouterOptions configures a Router.
type RouterOptions struct {
	// Primary is the primary's base URL; writes, admin and replication
	// traffic forward there.
	Primary string
	// Replicas are the replica base URLs reads round-robin across.
	Replicas []string
	// HealthInterval is how often backends are health-checked; values ≤ 0
	// mean 2 seconds.
	HealthInterval time.Duration
	// Client is used for health checks; nil means a 5-second-timeout client.
	Client *http.Client
	// Logger receives routing events; nil discards.
	Logger *slog.Logger
}

// backend is one proxied upstream.
type backend struct {
	url     *url.URL
	proxy   *httputil.ReverseProxy
	healthy atomic.Bool
}

// Router fronts a primary and its replicas: writes (and replication/admin
// traffic, which must see the authoritative log) are forwarded to the
// primary; reads round-robin across healthy replicas and fall back to the
// primary when none are. It is a stateless stdlib reverse proxy — the
// routing decision is purely method + path.
type Router struct {
	opt      RouterOptions
	log      *slog.Logger
	httpc    *http.Client
	primary  *backend
	replicas []*backend
	next     atomic.Uint64
}

// NewRouter builds a router over the given backends. URLs must parse.
func NewRouter(opt RouterOptions) (*Router, error) {
	if opt.HealthInterval <= 0 {
		opt.HealthInterval = 2 * time.Second
	}
	log := opt.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	httpc := opt.Client
	if httpc == nil {
		httpc = &http.Client{Timeout: 5 * time.Second}
	}
	rt := &Router{opt: opt, log: log, httpc: httpc}
	mk := func(raw string) (*backend, error) {
		u, err := url.Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("replica: router backend %q: %w", raw, err)
		}
		if u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("replica: router backend %q: need an absolute URL", raw)
		}
		b := &backend{url: u, proxy: httputil.NewSingleHostReverseProxy(u)}
		b.healthy.Store(true) // optimistic until the first probe says otherwise
		b.proxy.ErrorLog = slog.NewLogLogger(log.Handler(), slog.LevelWarn)
		b.proxy.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
			b.healthy.Store(false)
			log.Warn("router: upstream error", "backend", u.String(), "err", err)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadGateway)
			json.NewEncoder(w).Encode(map[string]any{
				"error": map[string]any{
					"code":    "bad_gateway",
					"message": "upstream unreachable",
					"details": map[string]any{"backend": u.String()},
				},
			})
		}
		return b, nil
	}
	var err error
	if rt.primary, err = mk(opt.Primary); err != nil {
		return nil, err
	}
	for _, raw := range opt.Replicas {
		b, err := mk(raw)
		if err != nil {
			return nil, err
		}
		rt.replicas = append(rt.replicas, b)
	}
	return rt, nil
}

// Run health-checks the backends until ctx is done.
func (rt *Router) Run(ctx context.Context) {
	tick := time.NewTicker(rt.opt.HealthInterval)
	defer tick.Stop()
	rt.probe(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			rt.probe(ctx)
		}
	}
}

func (rt *Router) probe(ctx context.Context) {
	all := append([]*backend{rt.primary}, rt.replicas...)
	var wg sync.WaitGroup
	for _, b := range all {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url.String()+"/v1/healthz", nil)
			if err != nil {
				b.healthy.Store(false)
				return
			}
			resp, err := rt.httpc.Do(req)
			if err != nil {
				b.healthy.Store(false)
				return
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			ok := resp.StatusCode == http.StatusOK
			if ok != b.healthy.Load() {
				rt.log.Info("router: backend health changed", "backend", b.url.String(), "healthy", ok)
			}
			b.healthy.Store(ok)
		}(b)
	}
	wg.Wait()
}

// isWrite classifies a request as one that must reach the primary. Reads
// include the POSTed query/batch/reason bodies — they mutate nothing.
func isWrite(r *http.Request) bool {
	switch r.Method {
	case http.MethodGet, http.MethodHead, http.MethodOptions:
		return false
	}
	p := r.URL.Path
	for _, read := range []string{
		"/v1/query", "/api/query",
		"/v1/batch", "/api/batch",
		"/v1/reason/",
	} {
		if p == read || (strings.HasSuffix(read, "/") && strings.HasPrefix(p, read)) {
			return false
		}
	}
	return true
}

// mustPrimary routes paths that need the authoritative process even on GET:
// the replication stream, admin, and the debug surface.
func mustPrimary(p string) bool {
	return strings.HasPrefix(p, "/v1/replication/") ||
		strings.HasPrefix(p, "/v1/admin/") ||
		strings.HasPrefix(p, "/api/admin/") ||
		strings.HasPrefix(p, "/debug/")
}

// pickReplica returns the next healthy replica, or nil when none is.
func (rt *Router) pickReplica() *backend {
	n := len(rt.replicas)
	if n == 0 {
		return nil
	}
	start := rt.next.Add(1)
	for i := 0; i < n; i++ {
		b := rt.replicas[(int(start)+i)%n]
		if b.healthy.Load() {
			return b
		}
	}
	return nil
}

// Handler returns the routing handler.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/router/status", rt.handleStatus)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if isWrite(r) || mustPrimary(r.URL.Path) {
			rt.primary.proxy.ServeHTTP(w, r)
			return
		}
		if b := rt.pickReplica(); b != nil {
			b.proxy.ServeHTTP(w, r)
			return
		}
		// No healthy replica: the primary serves its own reads.
		rt.primary.proxy.ServeHTTP(w, r)
	})
	return mux
}

// handleStatus reports the router's view of its backends.
func (rt *Router) handleStatus(w http.ResponseWriter, r *http.Request) {
	type be struct {
		URL     string `json:"url"`
		Healthy bool   `json:"healthy"`
	}
	reps := make([]be, len(rt.replicas))
	healthy := 0
	for i, b := range rt.replicas {
		reps[i] = be{URL: b.url.String(), Healthy: b.healthy.Load()}
		if reps[i].Healthy {
			healthy++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"data": map[string]any{
			"role":             "router",
			"primary":          be{URL: rt.primary.url.String(), Healthy: rt.primary.healthy.Load()},
			"replicas":         reps,
			"healthy_replicas": healthy,
		},
	})
}
