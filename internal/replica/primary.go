package replica

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"cardirect/internal/config"
	"cardirect/internal/geom"
	"cardirect/internal/persist"
	"cardirect/internal/wal"
)

// Editor is the mutation surface the primary wraps — structurally identical
// to the serve package's Editor, redeclared here so replica does not import
// serve (serve imports replica for the /v1/replication handlers).
type Editor interface {
	AddRegion(id, name, color string, g geom.Region) error
	RemoveRegion(id string) error
	RenameRegion(oldID, newID string) error
	SetRegionGeometry(id string, g geom.Region) error
	BulkAddRegions(regions []config.BulkRegion) error
}

// ErrTruncated reports a follower asking for records the primary has
// already trimmed from its retained window: the follower must re-bootstrap
// from a fresh snapshot (the HTTP layer maps it to 410 Gone).
var ErrTruncated = errors.New("replica: requested sequence trimmed from the retained log")

// PrimaryOptions configures a Primary.
type PrimaryOptions struct {
	// Retain is how many records the in-memory replication log keeps;
	// followers further behind than this re-bootstrap from a snapshot.
	// Values ≤ 0 mean 65536.
	Retain int
	// Pct controls whether streamed snapshots materialise percent
	// matrices — it must match the primary store's StoreOptions.Pct so a
	// replica seeding from the snapshot tracks the same state.
	Pct bool
}

// Primary wraps the write path of a serving process: every successful edit
// is encoded as a replication record and retained in a bounded in-memory
// log that followers tail over HTTP. Sequence numbers are scoped to an
// epoch — a random token chosen at construction — so a restarted primary
// (whose in-memory log is empty again) is never confused with its previous
// incarnation: followers check the epoch on every fetch and re-bootstrap
// when it changes.
type Primary struct {
	mu     sync.Mutex
	tr     *config.Tracked
	under  Editor
	opt    PrimaryOptions
	epoch  string
	recs   []StreamRecord // retained window; recs[0].Seq == floor+1
	floor  uint64         // highest trimmed sequence (0: nothing trimmed)
	head   uint64         // last assigned sequence
	notify chan struct{}  // closed and replaced on every append
}

// NewPrimary wraps an editor (the Tracked itself, or a persist.Store in
// durable deployments) whose edits land in tr's store.
func NewPrimary(tr *config.Tracked, under Editor, opt PrimaryOptions) *Primary {
	if opt.Retain <= 0 {
		opt.Retain = 65536
	}
	var tok [8]byte
	if _, err := rand.Read(tok[:]); err != nil {
		// Fall back to the only entropy left; epochs merely need to differ
		// between process incarnations with high probability.
		copy(tok[:], fmt.Sprintf("%d", time.Now().UnixNano()))
	}
	return &Primary{
		tr:     tr,
		under:  under,
		opt:    opt,
		epoch:  hex.EncodeToString(tok[:]),
		notify: make(chan struct{}),
	}
}

// Epoch returns the primary's replication epoch token.
func (p *Primary) Epoch() string { return p.epoch }

// Head returns the sequence of the last shipped record.
func (p *Primary) Head() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.head
}

// Generation returns the primary store's current generation.
func (p *Primary) Generation() uint64 { return p.tr.Store().Generation() }

// Pct reports whether streamed snapshots carry percent matrices.
func (p *Primary) Pct() bool { return p.opt.Pct }

// append records one applied edit batch. Callers hold p.mu and have already
// applied the edit, so the store generation read here is the post-apply one.
func (p *Primary) append(recs []wal.Record) {
	p.head++
	p.recs = append(p.recs, StreamRecord{
		Seq:     p.head,
		Gen:     p.tr.Store().Generation(),
		Payload: EncodeEdits(recs),
	})
	if over := len(p.recs) - p.opt.Retain; over > 0 {
		p.floor = p.recs[over-1].Seq
		p.recs = append(p.recs[:0], p.recs[over:]...)
	}
	close(p.notify)
	p.notify = make(chan struct{})
}

// AddRegion implements Editor, shipping the edit on success.
func (p *Primary) AddRegion(id, name, color string, g geom.Region) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.under.AddRegion(id, name, color, g); err != nil {
		return err
	}
	p.append([]wal.Record{{Op: wal.OpAdd, ID: id, Name: name, Color: color, Geometry: g}})
	return nil
}

// RemoveRegion implements Editor.
func (p *Primary) RemoveRegion(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.under.RemoveRegion(id); err != nil {
		return err
	}
	p.append([]wal.Record{{Op: wal.OpRemove, ID: id}})
	return nil
}

// RenameRegion implements Editor.
func (p *Primary) RenameRegion(oldID, newID string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.under.RenameRegion(oldID, newID); err != nil {
		return err
	}
	p.append([]wal.Record{{Op: wal.OpRename, ID: oldID, NewID: newID}})
	return nil
}

// SetRegionGeometry implements Editor.
func (p *Primary) SetRegionGeometry(id string, g geom.Region) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.under.SetRegionGeometry(id, g); err != nil {
		return err
	}
	p.append([]wal.Record{{Op: wal.OpSetGeometry, ID: id, Geometry: g}})
	return nil
}

// BulkAddRegions implements Editor: the whole batch ships as ONE record, so
// a follower applies it atomically through Tracked.BulkAddRegions and bumps
// its generation once, exactly like the primary did.
func (p *Primary) BulkAddRegions(regions []config.BulkRegion) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.under.BulkAddRegions(regions); err != nil {
		return err
	}
	if len(regions) == 0 {
		return nil
	}
	recs := make([]wal.Record, len(regions))
	for i, r := range regions {
		recs[i] = wal.Record{Op: wal.OpAdd, ID: r.ID, Name: r.Name, Color: r.Color, Geometry: r.Geometry}
	}
	p.append(recs)
	return nil
}

// Snapshot materialises and encodes the current world as a binary snapshot,
// returning it with the replication coordinates a follower needs to seed
// itself and resume the tail: the head sequence, the store generation, and
// the epoch — all captured atomically with the snapshot under the edit
// lock, so "snapshot at seq S, gen G" is exact, not racy.
func (p *Primary) Snapshot() (data []byte, seq, gen uint64, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.tr.Store().Len() == 0 {
		return nil, 0, 0, persist.ErrEmptyWorld
	}
	err = p.tr.WithMaterialized(p.opt.Pct, func(img *config.Image) error {
		data = persist.EncodeSnapshot(img)
		return nil
	})
	if err != nil {
		return nil, 0, 0, err
	}
	return data, p.head, p.tr.Store().Generation(), nil
}

// Records returns the retained records with sequence ≥ from, plus the
// current head. A from at or below the trimmed floor returns ErrTruncated:
// the follower is too far behind and must re-bootstrap. A from beyond the
// head returns no records (poll again, or Wait first).
func (p *Primary) Records(from uint64, max int) ([]StreamRecord, uint64, error) {
	if from == 0 {
		from = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if from <= p.floor {
		return nil, p.head, fmt.Errorf("%w (floor %d, requested %d)", ErrTruncated, p.floor, from)
	}
	i := int(from - p.floor - 1)
	if i >= len(p.recs) {
		return nil, p.head, nil
	}
	out := p.recs[i:]
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	// Copy the slice header run so a later trim cannot alias the caller's
	// view; payloads are append-only and safe to share.
	return append([]StreamRecord(nil), out...), p.head, nil
}

// DecodeSnapshotImage decodes and validates a streamed binary snapshot.
func DecodeSnapshotImage(data []byte) (*config.Image, error) {
	img, err := persist.DecodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	return img, nil
}

// Wait blocks until the head advances past after, the timeout elapses, or
// ctx is done — the long-poll primitive behind GET /v1/replication/wal.
func (p *Primary) Wait(ctx context.Context, after uint64, timeout time.Duration) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		p.mu.Lock()
		head, ch := p.head, p.notify
		p.mu.Unlock()
		if head > after {
			return
		}
		select {
		case <-ch:
		case <-deadline.C:
			return
		case <-ctx.Done():
			return
		}
	}
}
