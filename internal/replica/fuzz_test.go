package replica

import (
	"bytes"
	"testing"

	"cardirect/internal/geom"
	"cardirect/internal/wal"
)

// FuzzReplicationStream feeds arbitrary bytes to the replication frame
// decoder. Invariants (the wal.Replay contract, lifted to streams): no
// panic; validSize never exceeds the input; every accepted record's payload
// decodes as an edit batch; and the accepted prefix re-encodes to exactly
// the bytes it spans — so a replica that fsyncs a torn tail.log recovers
// precisely the records DecodeStream reports.
func FuzzReplicationStream(f *testing.F) {
	box := geom.Rgn(geom.Poly(geom.Rect{MinX: 0, MinY: 0, MaxX: 5, MaxY: 5}.Vertices()...))
	valid := EncodeStream([]StreamRecord{
		{Seq: 1, Gen: 2, Payload: EncodeEdits([]wal.Record{
			{Op: wal.OpAdd, ID: "a", Name: "Alpha", Color: "#ff0000", Geometry: box},
		})},
		{Seq: 2, Gen: 3, Payload: EncodeEdits([]wal.Record{
			{Op: wal.OpRemove, ID: "a"},
			{Op: wal.OpRename, ID: "b", NewID: "c"},
		})},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte(StreamMagic))
	f.Add([]byte{})
	f.Add([]byte("CDRS0001garbagegarbagegarbage"))
	flipped := append([]byte(nil), valid...)
	flipped[len(StreamMagic)+20] ^= 0xff // corrupt the first record's CRC
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validSize, corr := DecodeStream(data)
		if validSize < 0 || validSize > int64(len(data)) {
			t.Fatalf("validSize %d out of range for %d input bytes", validSize, len(data))
		}
		for i, rec := range recs {
			if _, err := DecodeEdits(rec.Payload); err != nil {
				t.Fatalf("accepted record %d has undecodable payload: %v", i, err)
			}
		}
		if validSize > 0 {
			if got := EncodeStream(recs); !bytes.Equal(got, data[:validSize]) {
				t.Fatalf("valid prefix does not re-encode to its own bytes")
			}
		}
		if corr == nil && len(data) > 0 && validSize != int64(len(data)) {
			t.Fatalf("no corruption reported but %d of %d bytes decoded", validSize, len(data))
		}
	})
}
