// Package replica implements WAL-shipped read replication: a Primary wraps
// the write path and retains every edit as a framed replication record; an
// HTTP layer streams a binary snapshot plus the record tail to followers;
// a Replica bootstraps from the snapshot, tails the stream, and applies
// records through the tracked store's delta path so cached relations stay
// warm without an O(n²) recompute. A Router in front forwards writes to the
// primary and round-robins reads across healthy replicas.
//
// Replication stream layout (all integers little-endian):
//
//	stream := "CDRS0001" record*
//	record := seq(uint64) gen(uint64) length(uint32) crc(uint32, CRC32C of payload) payload
//	payload := count(uint32) (length(uint32) wal-record-payload)*
//
// seq is the primary's record sequence (1-based, per epoch); gen is the
// store generation immediately AFTER applying the record, so a follower can
// align its own generation — and therefore its ETags — byte-for-byte with
// the primary. One record carries one logical edit: a bulk ingest of k
// regions is ONE record with k wal payloads, applied atomically, exactly as
// the primary applied it (and bumping the generation once, like AddBulk).
//
// Decoding follows the WAL's torn-tail discipline: DecodeStream returns the
// intact prefix, the number of bytes it spans, and a diagnostic for the
// first undecodable byte — arbitrary input never panics (FuzzReplicationStream).
package replica

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"cardirect/internal/wal"
)

// StreamMagic is the 8-byte header identifying a replication stream.
const StreamMagic = "CDRS0001"

// streamFrameSize is the per-record framing overhead: seq + gen + length + crc.
const streamFrameSize = 8 + 8 + 4 + 4

// MaxStreamPayload bounds one record's payload, like wal.MaxPayload.
const MaxStreamPayload = 64 << 20

// maxEditsPerRecord bounds the edit count inside one record payload; a bulk
// ingest of 10^6 regions stays far below it, and it keeps a corrupt count
// from turning into a giant allocation.
const maxEditsPerRecord = 1 << 24

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// StreamRecord is one shipped edit batch.
type StreamRecord struct {
	// Seq is the primary's 1-based record sequence within its epoch.
	Seq uint64
	// Gen is the primary's store generation after applying this record.
	Gen uint64
	// Payload is the encoded edit batch (EncodeEdits).
	Payload []byte
}

// EncodeEdits packs a batch of WAL records into one replication payload:
// a count followed by length-prefixed wal record payloads.
func EncodeEdits(recs []wal.Record) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(recs)))
	for _, rec := range recs {
		p := wal.EncodeRecord(rec)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p)))
		buf = append(buf, p...)
	}
	return buf
}

// DecodeEdits is the inverse of EncodeEdits. Arbitrary input returns an
// error, never panics: every length is validated before allocation.
func DecodeEdits(payload []byte) ([]wal.Record, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("replica: edit batch truncated (%d bytes)", len(payload))
	}
	count := binary.LittleEndian.Uint32(payload)
	rest := payload[4:]
	if count > maxEditsPerRecord {
		return nil, fmt.Errorf("replica: edit count %d exceeds limit", count)
	}
	// Each edit costs at least 4 length bytes + 1 payload byte.
	if uint64(count)*5 > uint64(len(rest)) {
		return nil, fmt.Errorf("replica: edit count %d cannot fit in %d bytes", count, len(rest))
	}
	recs := make([]wal.Record, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(rest) < 4 {
			return nil, fmt.Errorf("replica: edit %d length truncated", i)
		}
		n := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint64(n) > uint64(len(rest)) {
			return nil, fmt.Errorf("replica: edit %d wants %d bytes, %d remain", i, n, len(rest))
		}
		rec, err := wal.DecodeRecord(rest[:n])
		if err != nil {
			return nil, fmt.Errorf("replica: edit %d: %w", i, err)
		}
		recs = append(recs, rec)
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("replica: %d trailing bytes after edit batch", len(rest))
	}
	return recs, nil
}

// AppendStreamRecord frames one record onto buf (without the stream header).
func AppendStreamRecord(buf []byte, rec StreamRecord) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, rec.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, rec.Gen)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(rec.Payload, castagnoli))
	return append(buf, rec.Payload...)
}

// EncodeStream serialises a record batch with the stream header, as served
// by GET /v1/replication/wal.
func EncodeStream(recs []StreamRecord) []byte {
	buf := []byte(StreamMagic)
	for _, rec := range recs {
		buf = AppendStreamRecord(buf, rec)
	}
	return buf
}

// DecodeStream decodes the intact prefix of a stream image. Like
// wal.Replay, corruption — a torn or bit-flipped tail — terminates the
// decode at the last intact record and is reported as a diagnostic, and
// validSize is the byte length of the intact prefix. Record payloads are
// CRC-verified AND decoded as edit batches before a record is accepted, so
// everything returned is applicable.
func DecodeStream(data []byte) (recs []StreamRecord, validSize int64, corr *wal.Corruption) {
	if len(data) == 0 {
		return nil, 0, nil
	}
	if len(data) < len(StreamMagic) || string(data[:len(StreamMagic)]) != StreamMagic {
		return nil, 0, &wal.Corruption{Offset: 0, Reason: "bad or truncated stream header"}
	}
	off := int64(len(StreamMagic))
	rest := data[len(StreamMagic):]
	for len(rest) > 0 {
		if len(rest) < streamFrameSize {
			return recs, off, &wal.Corruption{Offset: off, Reason: fmt.Sprintf("torn frame: %d trailing bytes", len(rest))}
		}
		seq := binary.LittleEndian.Uint64(rest[0:8])
		gen := binary.LittleEndian.Uint64(rest[8:16])
		n := binary.LittleEndian.Uint32(rest[16:20])
		sum := binary.LittleEndian.Uint32(rest[20:24])
		if n > MaxStreamPayload {
			return recs, off, &wal.Corruption{Offset: off, Reason: fmt.Sprintf("frame length %d exceeds limit", n)}
		}
		if int(n) > len(rest)-streamFrameSize {
			return recs, off, &wal.Corruption{Offset: off, Reason: fmt.Sprintf("torn record: frame wants %d bytes, %d remain", n, len(rest)-streamFrameSize)}
		}
		payload := rest[streamFrameSize : streamFrameSize+int(n)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, off, &wal.Corruption{Offset: off, Reason: "CRC mismatch"}
		}
		if _, err := DecodeEdits(payload); err != nil {
			return recs, off, &wal.Corruption{Offset: off, Reason: err.Error()}
		}
		recs = append(recs, StreamRecord{Seq: seq, Gen: gen, Payload: payload})
		step := int64(streamFrameSize) + int64(n)
		off += step
		rest = rest[step:]
	}
	return recs, off, nil
}
