package replica

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"cardirect/internal/config"
	"cardirect/internal/core"
	"cardirect/internal/wal"
	"cardirect/internal/workload"
)

func newTestPrimary(t *testing.T, opt PrimaryOptions) (*Primary, *config.Tracked) {
	t.Helper()
	tr, err := config.Track(config.Greece(), core.StoreOptions{Workers: 1, Pct: opt.Pct})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return NewPrimary(tr, tr, opt), tr
}

func TestPrimaryShipsEdits(t *testing.T) {
	p, tr := newTestPrimary(t, PrimaryOptions{})
	box := workload.BoxRegion(500, 500, 510, 510)
	if err := p.AddRegion("ship1", "Ship One", "#123456", box); err != nil {
		t.Fatal(err)
	}
	if err := p.SetRegionGeometry("ship1", workload.BoxRegion(520, 520, 530, 530)); err != nil {
		t.Fatal(err)
	}
	if err := p.RenameRegion("ship1", "ship2"); err != nil {
		t.Fatal(err)
	}
	if err := p.RemoveRegion("ship2"); err != nil {
		t.Fatal(err)
	}
	if got := p.Head(); got != 4 {
		t.Fatalf("head = %d, want 4", got)
	}
	recs, head, err := p.Records(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if head != 4 || len(recs) != 4 {
		t.Fatalf("Records: %d recs, head %d", len(recs), head)
	}
	wantOps := []wal.Op{wal.OpAdd, wal.OpSetGeometry, wal.OpRename, wal.OpRemove}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
		edits, err := DecodeEdits(rec.Payload)
		if err != nil || len(edits) != 1 {
			t.Fatalf("record %d: edits=%d err=%v", i, len(edits), err)
		}
		if edits[0].Op != wantOps[i] {
			t.Fatalf("record %d op = %v, want %v", i, edits[0].Op, wantOps[i])
		}
	}
	// Each single edit bumps the store generation by exactly one, and the
	// record carries the post-apply generation — the ETag alignment anchor.
	for i := 1; i < len(recs); i++ {
		if recs[i].Gen != recs[i-1].Gen+1 {
			t.Fatalf("generation stride broken: rec %d gen %d after %d", i, recs[i].Gen, recs[i-1].Gen)
		}
	}
	if last := recs[len(recs)-1].Gen; last != tr.Store().Generation() {
		t.Fatalf("last record gen %d, store at %d", last, tr.Store().Generation())
	}
	// Failed edits ship nothing.
	if err := p.RemoveRegion("no-such-region"); err == nil {
		t.Fatal("removing a missing region succeeded")
	}
	if p.Head() != 4 {
		t.Fatalf("failed edit advanced head to %d", p.Head())
	}
}

func TestPrimaryBulkIsOneRecord(t *testing.T) {
	p, tr := newTestPrimary(t, PrimaryOptions{})
	genBefore := tr.Store().Generation()
	regions := make([]config.BulkRegion, 8)
	for i := range regions {
		x := 600 + float64(i)*20
		regions[i] = config.BulkRegion{ID: fmt.Sprintf("bulk%02d", i), Geometry: workload.BoxRegion(x, 600, x+10, 610)}
	}
	if err := p.BulkAddRegions(regions); err != nil {
		t.Fatal(err)
	}
	if p.Head() != 1 {
		t.Fatalf("bulk ingest shipped %d records, want 1", p.Head())
	}
	recs, _, err := p.Records(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	edits, err := DecodeEdits(recs[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(edits) != 8 {
		t.Fatalf("bulk record carries %d edits, want 8", len(edits))
	}
	// Like AddBulk, the whole batch bumps the generation once; the record's
	// gen is that post-batch value, so a replica applying it through
	// BulkAddRegions lands on the same generation.
	if got := tr.Store().Generation(); got != genBefore+1 {
		t.Fatalf("bulk bumped generation %d→%d, want one step", genBefore, got)
	}
	if recs[0].Gen != tr.Store().Generation() {
		t.Fatalf("bulk record gen %d, store at %d", recs[0].Gen, tr.Store().Generation())
	}
}

func TestPrimaryRetainAndTruncation(t *testing.T) {
	p, _ := newTestPrimary(t, PrimaryOptions{Retain: 4})
	for i := 0; i < 10; i++ {
		x := 700 + float64(i)*20
		if err := p.AddRegion(fmt.Sprintf("trim%02d", i), "", "", workload.BoxRegion(x, 700, x+10, 710)); err != nil {
			t.Fatal(err)
		}
	}
	// Only the last 4 records are retained: 7, 8, 9, 10.
	if _, _, err := p.Records(1, 100); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Records(1) = %v, want ErrTruncated", err)
	}
	if _, _, err := p.Records(6, 100); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Records(6) = %v, want ErrTruncated (floor is 6)", err)
	}
	recs, head, err := p.Records(7, 100)
	if err != nil {
		t.Fatal(err)
	}
	if head != 10 || len(recs) != 4 || recs[0].Seq != 7 {
		t.Fatalf("Records(7): %d recs from %d, head %d", len(recs), recs[0].Seq, head)
	}
	// max caps the batch; a from past the head returns an empty batch.
	recs, _, err = p.Records(7, 2)
	if err != nil || len(recs) != 2 {
		t.Fatalf("Records(7, max 2): %d recs, err %v", len(recs), err)
	}
	recs, _, err = p.Records(11, 100)
	if err != nil || len(recs) != 0 {
		t.Fatalf("Records(11): %d recs, err %v", len(recs), err)
	}
}

func TestPrimaryWaitLongPoll(t *testing.T) {
	p, _ := newTestPrimary(t, PrimaryOptions{})
	// Records already past `after`: Wait returns immediately.
	if err := p.AddRegion("wait1", "", "", workload.BoxRegion(800, 800, 810, 810)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	p.Wait(context.Background(), 0, 5*time.Second)
	if time.Since(start) > time.Second {
		t.Fatal("Wait blocked although records were available")
	}
	// Caught up: Wait blocks until the next append lands.
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Wait(context.Background(), 1, 10*time.Second)
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("Wait returned before any new record")
	default:
	}
	if err := p.AddRegion("wait2", "", "", workload.BoxRegion(820, 820, 830, 830)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not observe the append")
	}
	// Timeout expires without an append.
	start = time.Now()
	p.Wait(context.Background(), p.Head(), 30*time.Millisecond)
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("timeout Wait took %v", elapsed)
	}
}

func TestPrimarySnapshot(t *testing.T) {
	p, tr := newTestPrimary(t, PrimaryOptions{Pct: true})
	if err := p.AddRegion("snap1", "Snap", "#00ff00", workload.BoxRegion(900, 900, 910, 910)); err != nil {
		t.Fatal(err)
	}
	data, seq, gen, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if seq != p.Head() || gen != tr.Store().Generation() {
		t.Fatalf("snapshot coordinates seq=%d gen=%d, head=%d storeGen=%d",
			seq, gen, p.Head(), tr.Store().Generation())
	}
	img, err := DecodeSnapshotImage(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Regions) != 12 { // Greece's 11 + snap1
		t.Fatalf("snapshot holds %d regions, want 12", len(img.Regions))
	}
	if img.FindRegion("snap1") == nil {
		t.Fatal("snapshot missing the added region")
	}
	// A replica seeded from it reproduces the primary's relations.
	seeded, _, err := config.TrackSeeded(img, core.StoreOptions{Workers: 1, Pct: true})
	if err != nil {
		t.Fatal(err)
	}
	defer seeded.Close()
	wantRel, err := tr.Store().Relation("snap1", "attica")
	if err != nil {
		t.Fatal(err)
	}
	gotRel, err := seeded.Store().Relation("snap1", "attica")
	if err != nil {
		t.Fatal(err)
	}
	if wantRel != gotRel {
		t.Fatalf("seeded relation %v, primary %v", gotRel, wantRel)
	}
}

var _ Editor = (*Primary)(nil) // a Primary chains as another Primary's editor
