package replica

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cardirect/internal/config"
	"cardirect/internal/core"
	"cardirect/internal/wal"
)

// Replication HTTP headers. The primary stamps them on snapshot and wal
// responses; replicas echo staleness on their read responses.
const (
	// HeaderEpoch carries the primary's epoch token.
	HeaderEpoch = "Cardirect-Repl-Epoch"
	// HeaderSeq carries a snapshot's head sequence.
	HeaderSeq = "Cardirect-Repl-Seq"
	// HeaderHead carries the primary's current head sequence on wal fetches.
	HeaderHead = "Cardirect-Repl-Head"
	// HeaderGeneration carries the store generation of a snapshot.
	HeaderGeneration = "Cardirect-Repl-Generation"
	// HeaderPct reports whether the primary maintains percent matrices
	// ("on" or "off"); a replica seeds its store to match.
	HeaderPct = "Cardirect-Repl-Pct"
	// HeaderStaleness is stamped by replicas on read responses: the number
	// of replication records known to be unapplied (0 = caught up as of the
	// last poll).
	HeaderStaleness = "Cardirect-Staleness"
	// HeaderMinGeneration lets a reader demand freshness: a replica whose
	// store generation is below the value answers 503 replica_lagging.
	HeaderMinGeneration = "Cardirect-Min-Generation"
)

// maxFetchBytes caps one wal fetch's body.
const maxFetchBytes = 256 << 20

// Cache file names under Options.CacheDir.
const (
	cacheSnapshotName = "snapshot.bin"
	cacheTailName     = "tail.log"
	cacheMetaName     = "meta.json"
)

// cacheMeta is the durable checkpoint describing the cached snapshot: the
// epoch it came from and the replication coordinates at which it was taken.
// tail.log holds the stream records received after it.
type cacheMeta struct {
	Epoch      string `json:"epoch"`
	Seq        uint64 `json:"seq"`
	Generation uint64 `json:"generation"`
	Pct        bool   `json:"pct"`
}

// Options configures a Replica.
type Options struct {
	// Primary is the primary's base URL (e.g. http://127.0.0.1:8080).
	Primary string
	// CacheDir, when set, persists the bootstrap snapshot and the received
	// record tail so a restarted replica resumes from its last applied
	// sequence instead of re-downloading the world.
	CacheDir string
	// Workers sizes the store's recompute pool; ≤ 0 means GOMAXPROCS.
	Workers int
	// PollWait is the long-poll duration hint sent to the primary; values
	// ≤ 0 mean 10 seconds.
	PollWait time.Duration
	// MaxBatch caps records per fetch; values ≤ 0 mean 1024.
	MaxBatch int
	// Client is the HTTP client used for primary traffic; nil means a
	// client with a sensible timeout derived from PollWait.
	Client *http.Client
	// Logger receives replication progress; nil discards.
	Logger *slog.Logger
}

// Status is a replica's replication position, served as expvars and by
// GET /v1/replication/status.
type Status struct {
	Epoch            string `json:"epoch"`
	LastAppliedSeq   uint64 `json:"last_applied_seq"`
	HeadSeq          uint64 `json:"head_seq"`
	LagRecords       uint64 `json:"lag_records"`
	LagNS            int64  `json:"lag_ns"`
	Generation       uint64 `json:"generation"`
	BootSeq          uint64 `json:"boot_seq"`
	ResumedFromCache bool   `json:"resumed_from_cache"`
	Bootstraps       uint64 `json:"bootstraps"`
	RecordsApplied   uint64 `json:"records_applied"`
	LastError        string `json:"last_error,omitempty"`
}

// Replica tails a primary's replication stream: it bootstraps a tracked
// store from the primary's binary snapshot (or a local cache of it), then
// applies shipped records through the store's delta path — cached relations
// stay warm; an edit costs a row+column recompute, not O(n²). The tracked
// store it exposes is swapped wholesale when the primary's epoch changes
// (primary restart) or the tail falls behind the retained window.
type Replica struct {
	opt   Options
	log   *slog.Logger
	httpc *http.Client

	mu          sync.Mutex
	tr          *config.Tracked
	epoch       string
	pct         bool
	applied     uint64
	head        uint64
	bootSeq     uint64
	fromCache   bool
	bootstraps  uint64
	records     uint64
	lastErr     string
	caughtUpAt  time.Time
	everCaught  bool
	tail        *os.File
}

// current points expvar at the most recently opened replica (one per
// process in practice; tests open several and the latest wins).
var current atomic.Pointer[Replica]

var publishOnce sync.Once

func publishExpvars() {
	publishOnce.Do(func() {
		expvar.Publish("replication", expvar.Func(func() any {
			r := current.Load()
			if r == nil {
				return nil
			}
			return r.Status()
		}))
	})
}

// Open bootstraps a replica: from CacheDir when it holds a usable
// checkpoint, otherwise from the primary's snapshot endpoint (retrying
// briefly). The returned replica serves reads immediately; call Run to
// start tailing.
func Open(ctx context.Context, opt Options) (*Replica, error) {
	if opt.PollWait <= 0 {
		opt.PollWait = 10 * time.Second
	}
	if opt.MaxBatch <= 0 {
		opt.MaxBatch = 1024
	}
	log := opt.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	httpc := opt.Client
	if httpc == nil {
		httpc = &http.Client{Timeout: opt.PollWait + 30*time.Second}
	}
	r := &Replica{opt: opt, log: log, httpc: httpc}
	if opt.CacheDir != "" {
		if err := os.MkdirAll(opt.CacheDir, 0o755); err != nil {
			return nil, fmt.Errorf("replica: cache dir: %w", err)
		}
		if err := r.bootstrapFromCache(); err == nil {
			r.bootSeq = r.applied
			r.fromCache = true
			r.log.Info("replica: resumed from cache", "seq", r.applied, "generation", r.generationLocked())
			current.Store(r)
			publishExpvars()
			return r, nil
		} else if !errors.Is(err, os.ErrNotExist) {
			r.log.Warn("replica: cache unusable, bootstrapping from primary", "err", err)
		}
	}
	// Full bootstrap with a short retry loop: the primary may still be
	// coming up next to us.
	var err error
	for attempt, delay := 0, 100*time.Millisecond; ; attempt, delay = attempt+1, delay*2 {
		if err = r.bootstrap(ctx); err == nil {
			break
		}
		if attempt >= 6 || ctx.Err() != nil {
			return nil, fmt.Errorf("replica: bootstrap from %s: %w", opt.Primary, err)
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	r.bootSeq = r.applied
	current.Store(r)
	publishExpvars()
	return r, nil
}

// Tracked returns the replica's current tracked store. Callers must
// re-fetch it per use — it is swapped on re-bootstrap.
func (r *Replica) Tracked() *config.Tracked {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tr
}

// Pct reports whether the replicated store maintains percent matrices.
func (r *Replica) Pct() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pct
}

func (r *Replica) generationLocked() uint64 {
	if r.tr == nil {
		return 0
	}
	return r.tr.Store().Generation()
}

// Status reports the replica's replication position.
func (r *Replica) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Status{
		Epoch:            r.epoch,
		LastAppliedSeq:   r.applied,
		HeadSeq:          r.head,
		Generation:       r.generationLocked(),
		BootSeq:          r.bootSeq,
		ResumedFromCache: r.fromCache,
		Bootstraps:       r.bootstraps,
		RecordsApplied:   r.records,
		LastError:        r.lastErr,
	}
	if r.head > r.applied {
		st.LagRecords = r.head - r.applied
		if r.everCaught {
			st.LagNS = time.Since(r.caughtUpAt).Nanoseconds()
		}
	}
	return st
}

// Lag returns the last observed record lag (head - applied).
func (r *Replica) Lag() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.head > r.applied {
		return r.head - r.applied
	}
	return 0
}

// Close releases the cache file handle; the tracked store stays readable.
func (r *Replica) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tail != nil {
		err := r.tail.Close()
		r.tail = nil
		return err
	}
	return nil
}

// Run tails the primary until ctx is done, applying records as they
// arrive. Transport errors back off and retry; an epoch change or a
// trimmed-window response triggers a full re-bootstrap. It returns nil on
// context cancellation and an error only for unrecoverable local failures
// (a latched store divergence).
func (r *Replica) Run(ctx context.Context) error {
	backoff := 100 * time.Millisecond
	const maxBackoff = 5 * time.Second
	for {
		if ctx.Err() != nil {
			return nil
		}
		from := func() uint64 { r.mu.Lock(); defer r.mu.Unlock(); return r.applied + 1 }()
		recs, head, epoch, status, err := r.fetchWAL(ctx, from)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return nil
			}
			r.noteErr(err)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil
			}
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
			continue
		case status == http.StatusGone, epoch != r.currentEpoch():
			r.log.Info("replica: re-bootstrapping", "status", status, "epoch", epoch)
			if err := r.bootstrap(ctx); err != nil {
				if ctx.Err() != nil {
					return nil
				}
				r.noteErr(err)
				select {
				case <-time.After(backoff):
				case <-ctx.Done():
					return nil
				}
				if backoff *= 2; backoff > maxBackoff {
					backoff = maxBackoff
				}
			}
			continue
		}
		backoff = 100 * time.Millisecond
		if err := r.ingest(recs, head); err != nil {
			return err
		}
	}
}

func (r *Replica) currentEpoch() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

func (r *Replica) noteErr(err error) {
	r.mu.Lock()
	r.lastErr = err.Error()
	r.mu.Unlock()
	r.log.Warn("replica: tail error", "err", err)
}

// ingest durably caches then applies a fetched record batch. The cache
// write comes first (log-then-apply): a crash between the two replays the
// cached record on restart, whereas the reverse order would lose an applied
// edit from the cache.
func (r *Replica) ingest(recs []StreamRecord, head uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.head = head
	for _, rec := range recs {
		if rec.Seq != r.applied+1 {
			// A gap means the fetch raced a trim; the next poll will 410
			// and re-bootstrap.
			break
		}
		if r.tail != nil {
			if err := r.cacheAppendLocked(rec); err != nil {
				r.log.Warn("replica: cache append failed; disabling cache", "err", err)
				r.tail.Close()
				r.tail = nil
			}
		}
		if err := r.applyLocked(rec); err != nil {
			r.lastErr = err.Error()
			return fmt.Errorf("replica: applying record %d: %w", rec.Seq, err)
		}
		r.applied = rec.Seq
		r.records++
	}
	if r.applied == r.head {
		r.caughtUpAt = time.Now()
		r.everCaught = true
	}
	return nil
}

// applyLocked applies one record through the tracked store's delta path and
// aligns the generation with the primary's.
func (r *Replica) applyLocked(rec StreamRecord) error {
	edits, err := DecodeEdits(rec.Payload)
	if err != nil {
		return err
	}
	switch {
	case len(edits) == 0:
		return nil
	case len(edits) == 1:
		if err := applyOne(r.tr, edits[0]); err != nil {
			return err
		}
	default:
		// Multi-edit records are bulk ingests: all adds, applied as ONE
		// batched edit so the store recomputes once and the generation
		// bumps once, exactly like the primary's AddBulk.
		bulk := make([]config.BulkRegion, len(edits))
		for i, e := range edits {
			if e.Op != wal.OpAdd {
				return fmt.Errorf("replica: unsupported op %v in multi-edit record", e.Op)
			}
			bulk[i] = config.BulkRegion{ID: e.ID, Name: e.Name, Color: e.Color, Geometry: e.Geometry}
		}
		if err := r.tr.BulkAddRegions(bulk); err != nil {
			return err
		}
	}
	// Edits bump the local generation by exactly the primary's stride, so
	// this is normally a no-op; it re-aligns defensively either way because
	// ETag agreement rides on it.
	r.tr.Store().SetGeneration(rec.Gen)
	return nil
}

// applyOne applies a single wal record to the tracked store.
func applyOne(tr *config.Tracked, rec wal.Record) error {
	switch rec.Op {
	case wal.OpAdd:
		return tr.AddRegion(rec.ID, rec.Name, rec.Color, rec.Geometry)
	case wal.OpRemove:
		return tr.RemoveRegion(rec.ID)
	case wal.OpRename:
		return tr.RenameRegion(rec.ID, rec.NewID)
	case wal.OpSetGeometry:
		return tr.SetRegionGeometry(rec.ID, rec.Geometry)
	default:
		return fmt.Errorf("replica: unknown op %v", rec.Op)
	}
}

// bootstrap downloads the primary's snapshot and seeds a fresh tracked
// store from it, replacing the current one and resetting the cache.
func (r *Replica) bootstrap(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.opt.Primary+"/v1/replication/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := r.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("replica: snapshot fetch: %s: %s", resp.Status, body)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxFetchBytes))
	if err != nil {
		return err
	}
	meta := cacheMeta{Epoch: resp.Header.Get(HeaderEpoch), Pct: resp.Header.Get(HeaderPct) == "on"}
	if meta.Seq, err = strconv.ParseUint(resp.Header.Get(HeaderSeq), 10, 64); err != nil {
		return fmt.Errorf("replica: snapshot response missing %s", HeaderSeq)
	}
	if meta.Generation, err = strconv.ParseUint(resp.Header.Get(HeaderGeneration), 10, 64); err != nil {
		return fmt.Errorf("replica: snapshot response missing %s", HeaderGeneration)
	}
	tr, err := seedTracked(data, meta, r.opt.Workers)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tr != nil {
		r.tr.Close()
	}
	r.tr = tr
	r.epoch = meta.Epoch
	r.pct = meta.Pct
	r.applied = meta.Seq
	r.head = meta.Seq
	r.bootstraps++
	r.caughtUpAt = time.Now()
	r.everCaught = true
	if r.opt.CacheDir != "" {
		if err := r.cacheResetLocked(data, meta); err != nil {
			r.log.Warn("replica: cache reset failed; continuing without cache", "err", err)
		}
	}
	r.log.Info("replica: bootstrapped", "seq", meta.Seq, "generation", meta.Generation, "epoch", meta.Epoch)
	return nil
}

// seedTracked decodes and validates a snapshot and seeds a tracked store at
// the primary's generation.
func seedTracked(data []byte, meta cacheMeta, workers int) (*config.Tracked, error) {
	img, err := DecodeSnapshotImage(data)
	if err != nil {
		return nil, err
	}
	tr, _, err := config.TrackSeeded(img, core.StoreOptions{Workers: workers, Pct: meta.Pct})
	if err != nil {
		return nil, err
	}
	tr.Store().SetGeneration(meta.Generation)
	return tr, nil
}

// fetchWAL asks the primary for records from the given sequence. It
// returns the decoded records, the primary's head and epoch, and the HTTP
// status (410 signals a trimmed window).
func (r *Replica) fetchWAL(ctx context.Context, from uint64) (recs []StreamRecord, head uint64, epoch string, status int, err error) {
	u := fmt.Sprintf("%s/v1/replication/wal?%s", r.opt.Primary, url.Values{
		"from": {strconv.FormatUint(from, 10)},
		"wait": {r.opt.PollWait.String()},
		"max":  {strconv.Itoa(r.opt.MaxBatch)},
	}.Encode())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, 0, "", 0, err
	}
	resp, err := r.httpc.Do(req)
	if err != nil {
		return nil, 0, "", 0, err
	}
	defer resp.Body.Close()
	epoch = resp.Header.Get(HeaderEpoch)
	head, _ = strconv.ParseUint(resp.Header.Get(HeaderHead), 10, 64)
	if resp.StatusCode == http.StatusGone {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, head, epoch, resp.StatusCode, nil
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, 0, "", resp.StatusCode, fmt.Errorf("replica: wal fetch: %s: %s", resp.Status, body)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxFetchBytes))
	if err != nil {
		return nil, 0, "", 0, err
	}
	recs, _, corr := DecodeStream(data)
	if corr != nil {
		return nil, 0, "", 0, fmt.Errorf("replica: corrupt stream at %s", corr)
	}
	return recs, head, epoch, resp.StatusCode, nil
}

// --- local cache -----------------------------------------------------------

// cacheResetLocked atomically installs a fresh checkpoint: snapshot bytes,
// an empty tail, and last the meta file that references them.
func (r *Replica) cacheResetLocked(snapshot []byte, meta cacheMeta) error {
	if r.tail != nil {
		r.tail.Close()
		r.tail = nil
	}
	dir := r.opt.CacheDir
	if err := writeFileAtomic(filepath.Join(dir, cacheSnapshotName), snapshot); err != nil {
		return err
	}
	tailPath := filepath.Join(dir, cacheTailName)
	f, err := os.OpenFile(tailPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(StreamMagic)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	metaData, err := json.Marshal(meta)
	if err != nil {
		f.Close()
		return err
	}
	if err := writeFileAtomic(filepath.Join(dir, cacheMetaName), metaData); err != nil {
		f.Close()
		return err
	}
	r.tail = f
	return nil
}

// cacheAppendLocked frames one received record onto the tail log and
// fsyncs, so a SIGKILLed replica finds it again at restart.
func (r *Replica) cacheAppendLocked(rec StreamRecord) error {
	if _, err := r.tail.Write(AppendStreamRecord(nil, rec)); err != nil {
		return err
	}
	return r.tail.Sync()
}

// bootstrapFromCache seeds the replica from the local checkpoint: decode
// the cached snapshot, replay the intact prefix of the cached tail, and
// leave the tail open for appending. os.ErrNotExist means no cache.
func (r *Replica) bootstrapFromCache() error {
	dir := r.opt.CacheDir
	metaData, err := os.ReadFile(filepath.Join(dir, cacheMetaName))
	if err != nil {
		return err
	}
	var meta cacheMeta
	if err := json.Unmarshal(metaData, &meta); err != nil {
		return fmt.Errorf("replica: cache meta: %w", err)
	}
	snapshot, err := os.ReadFile(filepath.Join(dir, cacheSnapshotName))
	if err != nil {
		return err
	}
	tr, err := seedTracked(snapshot, meta, r.opt.Workers)
	if err != nil {
		return fmt.Errorf("replica: cached snapshot: %w", err)
	}
	tailPath := filepath.Join(dir, cacheTailName)
	tailData, err := os.ReadFile(tailPath)
	if err != nil {
		return err
	}
	recs, valid, corr := DecodeStream(tailData)
	if corr != nil {
		// A torn tail is expected after a crash: keep the intact prefix.
		if err := os.Truncate(tailPath, valid); err != nil {
			return err
		}
	}
	r.tr = tr
	r.epoch = meta.Epoch
	r.pct = meta.Pct
	r.applied = meta.Seq
	r.head = meta.Seq
	r.bootstraps++
	for _, rec := range recs {
		if rec.Seq != r.applied+1 {
			if rec.Seq <= r.applied {
				continue // duplicate from an overlapping fetch; already applied pre-crash
			}
			return fmt.Errorf("replica: cache tail gap: have %d, next record is %d", r.applied, rec.Seq)
		}
		if err := r.applyLocked(rec); err != nil {
			return fmt.Errorf("replica: replaying cached record %d: %w", rec.Seq, err)
		}
		r.applied = rec.Seq
		r.head = rec.Seq
		r.records++
	}
	f, err := os.OpenFile(tailPath, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return err
	}
	r.tail = f
	r.caughtUpAt = time.Now()
	r.everCaught = true
	return nil
}

func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
