package replica

import (
	"bytes"
	"fmt"
	"testing"

	"cardirect/internal/geom"
	"cardirect/internal/wal"
)

// streamFixture builds a small stream of records: single edits plus one
// multi-edit bulk batch, matching what a primary ships.
func streamFixture(t *testing.T) []StreamRecord {
	t.Helper()
	box := func(x float64) geom.Region {
		return geom.Rgn(geom.Poly(geom.Rect{MinX: x, MinY: 0, MaxX: x + 5, MaxY: 5}.Vertices()...))
	}
	recs := []StreamRecord{
		{Seq: 1, Gen: 4, Payload: EncodeEdits([]wal.Record{
			{Op: wal.OpAdd, ID: "a", Name: "Alpha", Color: "#ff0000", Geometry: box(0)},
		})},
		{Seq: 2, Gen: 5, Payload: EncodeEdits([]wal.Record{
			{Op: wal.OpAdd, ID: "b", Geometry: box(10)},
			{Op: wal.OpAdd, ID: "c", Geometry: box(20)},
			{Op: wal.OpAdd, ID: "d", Geometry: box(30)},
		})},
		{Seq: 3, Gen: 6, Payload: EncodeEdits([]wal.Record{
			{Op: wal.OpRemove, ID: "a"},
		})},
		{Seq: 4, Gen: 7, Payload: EncodeEdits([]wal.Record{
			{Op: wal.OpRename, ID: "b", NewID: "beta"},
		})},
	}
	return recs
}

func TestStreamRoundTrip(t *testing.T) {
	recs := streamFixture(t)
	data := EncodeStream(recs)
	got, validSize, corr := DecodeStream(data)
	if corr != nil {
		t.Fatalf("clean stream reported corruption: %v", corr)
	}
	if validSize != int64(len(data)) {
		t.Fatalf("validSize %d, want %d", validSize, len(data))
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i, rec := range got {
		if rec.Seq != recs[i].Seq || rec.Gen != recs[i].Gen || !bytes.Equal(rec.Payload, recs[i].Payload) {
			t.Fatalf("record %d differs: %+v vs %+v", i, rec, recs[i])
		}
		edits, err := DecodeEdits(rec.Payload)
		if err != nil {
			t.Fatalf("record %d payload undecodable: %v", i, err)
		}
		if i == 1 && len(edits) != 3 {
			t.Fatalf("bulk record decoded to %d edits, want 3", len(edits))
		}
	}
	if _, _, corr := DecodeStream(nil); corr != nil {
		t.Fatalf("empty input reported corruption: %v", corr)
	}
}

// TestDecodeStreamTruncation cuts a valid stream at every byte offset: the
// decode must never panic, must return an intact record prefix, and the
// reported valid prefix must re-encode to exactly the bytes it spans.
func TestDecodeStreamTruncation(t *testing.T) {
	full := EncodeStream(streamFixture(t))
	want, _, _ := DecodeStream(full)
	for cut := 0; cut < len(full); cut++ {
		data := full[:cut]
		recs, validSize, corr := DecodeStream(data)
		if validSize > int64(cut) {
			t.Fatalf("cut %d: validSize %d exceeds input", cut, validSize)
		}
		if len(recs) > len(want) {
			t.Fatalf("cut %d: more records than the intact stream", cut)
		}
		for i, rec := range recs {
			if rec.Seq != want[i].Seq || !bytes.Equal(rec.Payload, want[i].Payload) {
				t.Fatalf("cut %d: record %d is not a prefix of the intact decode", cut, i)
			}
		}
		// A cut landing exactly on a record boundary is a complete,
		// shorter stream — no diagnostic; anywhere else must report one.
		if corr == nil && validSize != int64(cut) {
			t.Fatalf("cut %d: no diagnostic but only %d bytes decoded", cut, validSize)
		}
		if corr != nil && cut > 0 && validSize == int64(cut) {
			t.Fatalf("cut %d: clean full decode reported corruption: %v", cut, corr)
		}
		if validSize > 0 {
			if got := EncodeStream(recs); !bytes.Equal(got, data[:validSize]) {
				t.Fatalf("cut %d: valid prefix does not re-encode to its bytes", cut)
			}
		}
	}
}

// TestDecodeStreamBitFlip flips every byte of a valid stream in turn: no
// panic, and every returned record must still CRC-verify and decode (the
// flip may only shorten the accepted prefix, never corrupt it).
func TestDecodeStreamBitFlip(t *testing.T) {
	full := EncodeStream(streamFixture(t))
	for off := 0; off < len(full); off++ {
		data := append([]byte(nil), full...)
		data[off] ^= 0x40
		recs, validSize, _ := DecodeStream(data)
		if validSize > int64(len(data)) {
			t.Fatalf("flip at %d: validSize %d exceeds input", off, validSize)
		}
		for i, rec := range recs {
			if _, err := DecodeEdits(rec.Payload); err != nil {
				t.Fatalf("flip at %d: accepted record %d has undecodable payload: %v", off, i, err)
			}
		}
	}
}

func TestDecodeEditsRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x01},
		{0xff, 0xff, 0xff, 0xff},                         // absurd count
		{0x01, 0x00, 0x00, 0x00},                         // count 1, no edits
		{0x01, 0x00, 0x00, 0x00, 0xff, 0x00, 0x00, 0x00}, // length past end
	}
	for i, c := range cases {
		if _, err := DecodeEdits(c); err == nil {
			t.Errorf("case %d: garbage decoded without error", i)
		}
	}
	// Trailing bytes after a well-formed batch are an error, not ignored.
	ok := EncodeEdits([]wal.Record{{Op: wal.OpRemove, ID: "x"}})
	if _, err := DecodeEdits(append(ok, 0x00)); err == nil {
		t.Error("trailing byte accepted")
	}
	if _, err := DecodeEdits(ok); err != nil {
		t.Errorf("clean batch rejected: %v", err)
	}
}

func TestDecodeStreamBadHeader(t *testing.T) {
	for _, data := range [][]byte{[]byte("CDRS"), []byte("XXXXXXXX"), []byte("CDRS0002extra")} {
		recs, validSize, corr := DecodeStream(data)
		if corr == nil || validSize != 0 || len(recs) != 0 {
			t.Errorf("header %q: recs=%d valid=%d corr=%v", data, len(recs), validSize, corr)
		}
	}
}

func TestEncodeEditsEmpty(t *testing.T) {
	payload := EncodeEdits(nil)
	recs, err := DecodeEdits(payload)
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty batch: recs=%v err=%v", recs, err)
	}
	// An empty-batch record still frames and round-trips.
	data := EncodeStream([]StreamRecord{{Seq: 9, Gen: 9, Payload: payload}})
	got, _, corr := DecodeStream(data)
	if corr != nil || len(got) != 1 || got[0].Seq != 9 {
		t.Fatalf("empty-batch record: got=%v corr=%v", got, corr)
	}
}

func ExampleEncodeStream() {
	data := EncodeStream([]StreamRecord{
		{Seq: 1, Gen: 12, Payload: EncodeEdits([]wal.Record{{Op: wal.OpRemove, ID: "attica"}})},
	})
	recs, _, _ := DecodeStream(data)
	edits, _ := DecodeEdits(recs[0].Payload)
	fmt.Println(recs[0].Seq, recs[0].Gen, len(edits), edits[0].ID)
	// Output: 1 12 1 attica
}
