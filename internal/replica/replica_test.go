package replica_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cardirect/internal/config"
	"cardirect/internal/core"
	"cardirect/internal/replica"
	"cardirect/internal/serve"
	"cardirect/internal/workload"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// primaryFixture is a serving replication primary: a tracked Greece world,
// the Primary wrapper edits route through, and the HTTP server in front.
type primaryFixture struct {
	tr   *config.Tracked
	prim *replica.Primary
	ts   *httptest.Server
}

func newPrimaryFixture(t *testing.T, pct bool) *primaryFixture {
	t.Helper()
	tr, err := config.Track(config.Greece(), core.StoreOptions{Workers: 1, Pct: pct})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	prim := replica.NewPrimary(tr, tr, replica.PrimaryOptions{Pct: pct})
	srv := serve.New(tr, serve.Options{
		Logger:      quietLogger(),
		Repl:        prim,
		Editor:      prim,
		PctDisabled: !pct,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &primaryFixture{tr: tr, prim: prim, ts: ts}
}

// replicaFixture is a follower: the tailing Replica and its read-only server.
type replicaFixture struct {
	rep    *replica.Replica
	ts     *httptest.Server
	cancel context.CancelFunc
	done   chan struct{}
}

func newReplicaFixture(t *testing.T, primaryURL, cacheDir string) *replicaFixture {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	rep, err := replica.Open(ctx, replica.Options{
		Primary:  primaryURL,
		CacheDir: cacheDir,
		Workers:  1,
		PollWait: 50 * time.Millisecond,
		Logger:   quietLogger(),
	})
	if err != nil {
		cancel()
		t.Fatalf("opening replica: %v", err)
	}
	f := &replicaFixture{rep: rep, cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(f.done)
		rep.Run(ctx)
	}()
	srv := serve.New(rep.Tracked(), serve.Options{
		Logger:     quietLogger(),
		Role:       "replica",
		PrimaryURL: primaryURL,
		Follower:   rep,
	})
	f.ts = httptest.NewServer(srv.Handler())
	t.Cleanup(func() { f.stop(); f.ts.Close(); rep.Close() })
	return f
}

// stop cancels the tail loop and waits for it to exit (idempotent).
func (f *replicaFixture) stop() {
	f.cancel()
	<-f.done
}

// waitCaughtUp blocks until the replica has applied every primary record and
// its store generation equals the primary's.
func waitCaughtUp(t *testing.T, p *primaryFixture, rep *replica.Replica) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		st := rep.Status()
		if st.LastAppliedSeq == p.prim.Head() &&
			rep.Tracked().Store().Generation() == p.tr.Store().Generation() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("replica never caught up: status %+v, primary head %d gen %d",
		rep.Status(), p.prim.Head(), p.tr.Store().Generation())
}

// fetch performs a request and returns status, headers and body.
func fetch(t *testing.T, req *http.Request) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

func get(t *testing.T, base, path string, header map[string]string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	return fetch(t, req)
}

func post(t *testing.T, base, path string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	return fetch(t, req)
}

// errorCode unwraps {"error": {"code": ...}} envelopes.
func errorCode(t *testing.T, body []byte) (code string, details map[string]any) {
	t.Helper()
	var env struct {
		Error struct {
			Code    string         `json:"code"`
			Details map[string]any `json:"details"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("not an error envelope: %v in %s", err, body)
	}
	return env.Error.Code, env.Error.Details
}

// TestReplicaDifferential is the acceptance differential: across a
// randomized edit stream, a caught-up replica's /v1/relations, /v1/select
// and /v1/query responses — bodies AND ETags — are byte-identical to the
// primary's at the same generation, and writes to the replica answer 421
// not_primary carrying the primary's URL.
func TestReplicaDifferential(t *testing.T) {
	p := newPrimaryFixture(t, true)
	f := newReplicaFixture(t, p.ts.URL, "")

	rng := rand.New(rand.NewSource(42))
	live := []string{} // synthetic ids only; Greece's fixtures stay put
	nextID := 0
	add := func() {
		id := fmt.Sprintf("dyn%03d", nextID)
		nextID++
		x, y := rng.Float64()*400+500, rng.Float64()*400+500
		if err := p.prim.AddRegion(id, "Dyn "+id, "#336699", workload.BoxRegion(x, y, x+15, y+15)); err != nil {
			t.Fatal(err)
		}
		live = append(live, id)
	}
	for step := 0; step < 40; step++ {
		switch op := rng.Intn(10); {
		case op < 5 || len(live) == 0:
			add()
		case op < 7:
			id := live[rng.Intn(len(live))]
			x, y := rng.Float64()*400+500, rng.Float64()*400+500
			if err := p.prim.SetRegionGeometry(id, workload.BoxRegion(x, y, x+12, y+12)); err != nil {
				t.Fatal(err)
			}
		case op < 8:
			i := rng.Intn(len(live))
			if err := p.prim.RemoveRegion(live[i]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		case op < 9:
			i := rng.Intn(len(live))
			renamed := live[i] + "r"
			if err := p.prim.RenameRegion(live[i], renamed); err != nil {
				t.Fatal(err)
			}
			live[i] = renamed
		default:
			batch := make([]config.BulkRegion, 5)
			for j := range batch {
				id := fmt.Sprintf("dyn%03d", nextID)
				nextID++
				x, y := rng.Float64()*400+500, rng.Float64()*400+500
				batch[j] = config.BulkRegion{ID: id, Geometry: workload.BoxRegion(x, y, x+8, y+8)}
				live = append(live, id)
			}
			if err := p.prim.BulkAddRegions(batch); err != nil {
				t.Fatal(err)
			}
		}
		// Compare at a handful of intermediate generations plus the end.
		if step%13 != 12 && step != 39 {
			continue
		}
		waitCaughtUp(t, p, f.rep)
		gen := p.tr.Store().Generation()
		wantETag := fmt.Sprintf("%q", fmt.Sprintf("g%d", gen))
		queryBody, _ := json.Marshal(map[string]any{"q": "q(x, y) :- x N y"})
		reads := []struct {
			name string
			do   func(base string) (int, http.Header, []byte)
		}{
			{"relations", func(base string) (int, http.Header, []byte) {
				return get(t, base, "/v1/relations", nil)
			}},
			{"relations+pct", func(base string) (int, http.Header, []byte) {
				return get(t, base, "/v1/relations?pct=1", nil)
			}},
			{"select", func(base string) (int, http.Header, []byte) {
				return get(t, base, "/v1/select?reference=attica&relation=N", nil)
			}},
			{"query", func(base string) (int, http.Header, []byte) {
				// Twice: the second answer is a plan-cache hit on both
				// sides, so the Cache field in the body agrees.
				post(t, base, "/v1/query", queryBody)
				return post(t, base, "/v1/query", queryBody)
			}},
		}
		for _, rd := range reads {
			pStatus, pHdr, pBody := rd.do(p.ts.URL)
			rStatus, rHdr, rBody := rd.do(f.ts.URL)
			if pStatus != http.StatusOK || rStatus != http.StatusOK {
				t.Fatalf("step %d %s: primary %d, replica %d: %s", step, rd.name, pStatus, rStatus, rBody)
			}
			if !bytes.Equal(pBody, rBody) {
				t.Fatalf("step %d %s: bodies differ at generation %d:\nprimary: %s\nreplica: %s",
					step, rd.name, gen, pBody, rBody)
			}
			if pe, re := pHdr.Get("ETag"), rHdr.Get("ETag"); pe != re || pe != wantETag {
				t.Fatalf("step %d %s: ETags primary=%q replica=%q want %q", step, rd.name, pe, re, wantETag)
			}
			if rd.name != "query" {
				// Conditional revalidation against the replica's tag works
				// exactly like against the primary.
				status, _, _ := get(t, f.ts.URL, "/v1/"+strings.SplitN(rd.name, "+", 2)[0], map[string]string{"If-None-Match": wantETag})
				_ = status // relations+pct aliases to relations without ?pct; 304 either way
			}
		}
	}

	// Writes to the replica: 421 not_primary with the primary URL in details.
	for _, w := range []struct {
		method, path string
		body         []byte
	}{
		{http.MethodPost, "/v1/regions", []byte(`{"id":"nope","wkt":"POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))"}`)},
		{http.MethodDelete, "/v1/regions/attica", nil},
		{http.MethodPost, "/api/regions", []byte(`{"id":"nope2","wkt":"POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))"}`)},
	} {
		req, err := http.NewRequest(w.method, f.ts.URL+w.path, bytes.NewReader(w.body))
		if err != nil {
			t.Fatal(err)
		}
		status, _, body := fetch(t, req)
		if status != http.StatusMisdirectedRequest {
			t.Fatalf("%s %s on replica: status %d, want 421: %s", w.method, w.path, status, body)
		}
		code, details := errorCode(t, body)
		if code != "not_primary" {
			t.Fatalf("%s %s: code %q, want not_primary", w.method, w.path, code)
		}
		if details["primary"] != p.ts.URL {
			t.Fatalf("%s %s: details.primary = %v, want %s", w.method, w.path, details["primary"], p.ts.URL)
		}
	}
	// The same writes on the primary still work.
	status, _, body := post(t, p.ts.URL, "/v1/regions", []byte(`{"id":"ok1","wkt":"POLYGON ((950 950, 960 950, 960 960, 950 960, 950 950))"}`))
	if status != http.StatusCreated {
		t.Fatalf("primary write: status %d: %s", status, body)
	}
	waitCaughtUp(t, p, f.rep)
}

// TestReplicaStalenessContract covers the bounded-staleness surface: a
// lagging replica stamps Cardirect-Staleness, answers 503 replica_lagging to
// a Cardirect-Min-Generation it has not reached, and serves the request once
// caught up; the replication status route reports both roles.
func TestReplicaStalenessContract(t *testing.T) {
	p := newPrimaryFixture(t, true)
	f := newReplicaFixture(t, p.ts.URL, "")
	waitCaughtUp(t, p, f.rep)
	f.stop() // freeze the replica: new primary edits won't apply

	if err := p.prim.AddRegion("ahead", "", "", workload.BoxRegion(500, 500, 510, 510)); err != nil {
		t.Fatal(err)
	}
	primGen := p.tr.Store().Generation()
	minGen := map[string]string{replica.HeaderMinGeneration: fmt.Sprint(primGen)}

	status, hdr, body := get(t, f.ts.URL, "/v1/relations", nil)
	if status != http.StatusOK {
		t.Fatalf("unconditional read on a lagging replica: %d: %s", status, body)
	}
	if hdr.Get(replica.HeaderStaleness) == "" {
		t.Fatal("replica response missing the Cardirect-Staleness header")
	}
	status, _, body = get(t, f.ts.URL, "/v1/relations", minGen)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("min-generation read on a lagging replica: %d, want 503: %s", status, body)
	}
	code, details := errorCode(t, body)
	if code != "replica_lagging" {
		t.Fatalf("code %q, want replica_lagging", code)
	}
	if details["primary"] != p.ts.URL {
		t.Fatalf("details.primary = %v", details["primary"])
	}
	// The primary itself always satisfies its own generation.
	if status, _, _ := get(t, p.ts.URL, "/v1/relations", minGen); status != http.StatusOK {
		t.Fatalf("primary min-generation read: %d", status)
	}
	// Malformed header: 400.
	if status, _, _ := get(t, f.ts.URL, "/v1/relations", map[string]string{replica.HeaderMinGeneration: "soon"}); status != http.StatusBadRequest {
		t.Fatal("malformed min-generation accepted")
	}

	// Resume tailing (fresh context), catch up, and the demand is met.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.rep.Run(ctx)
	waitCaughtUp(t, p, f.rep)
	status, _, body = get(t, f.ts.URL, "/v1/relations", minGen)
	if status != http.StatusOK {
		t.Fatalf("min-generation read after catch-up: %d: %s", status, body)
	}

	// Status routes: the primary reports its epoch and head, the replica its
	// applied position.
	var primSt struct {
		Data struct {
			Role    string `json:"role"`
			Enabled bool   `json:"enabled"`
			Epoch   string `json:"epoch"`
			HeadSeq uint64 `json:"head_seq"`
		} `json:"data"`
	}
	_, _, body = get(t, p.ts.URL, "/v1/replication/status", nil)
	if err := json.Unmarshal(body, &primSt); err != nil {
		t.Fatal(err)
	}
	if primSt.Data.Role != "primary" || !primSt.Data.Enabled || primSt.Data.Epoch == "" || primSt.Data.HeadSeq == 0 {
		t.Fatalf("primary replication status: %+v", primSt.Data)
	}
	var repSt struct {
		Data struct {
			Role    string          `json:"role"`
			Replica *replica.Status `json:"replica"`
		} `json:"data"`
	}
	_, _, body = get(t, f.ts.URL, "/v1/replication/status", nil)
	if err := json.Unmarshal(body, &repSt); err != nil {
		t.Fatal(err)
	}
	if repSt.Data.Role != "replica" || repSt.Data.Replica == nil {
		t.Fatalf("replica replication status: %s", body)
	}
	if repSt.Data.Replica.Epoch != primSt.Data.Epoch || repSt.Data.Replica.LastAppliedSeq != p.prim.Head() {
		t.Fatalf("replica position: %+v vs primary epoch %s head %d",
			repSt.Data.Replica, primSt.Data.Epoch, p.prim.Head())
	}
}

// TestReplicaCacheResume kills a tailing replica and restarts it over the
// same cache directory: it must resume from its last applied sequence
// (ResumedFromCache, BootSeq > 0) instead of re-downloading the snapshot,
// then converge to the primary's generation.
func TestReplicaCacheResume(t *testing.T) {
	p := newPrimaryFixture(t, false)
	cache := t.TempDir()
	f := newReplicaFixture(t, p.ts.URL, cache)
	for i := 0; i < 5; i++ {
		x := 500 + float64(i)*20
		if err := p.prim.AddRegion(fmt.Sprintf("pre%02d", i), "", "", workload.BoxRegion(x, 500, x+10, 510)); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, p, f.rep)
	appliedAtStop := f.rep.Status().LastAppliedSeq
	f.stop()
	f.ts.Close()
	f.rep.Close()

	// The primary moves on while the replica is down.
	for i := 0; i < 3; i++ {
		x := 700 + float64(i)*20
		if err := p.prim.AddRegion(fmt.Sprintf("down%02d", i), "", "", workload.BoxRegion(x, 700, x+10, 710)); err != nil {
			t.Fatal(err)
		}
	}

	f2 := newReplicaFixture(t, p.ts.URL, cache)
	st := f2.rep.Status()
	if !st.ResumedFromCache {
		t.Fatalf("restart did not resume from cache: %+v", st)
	}
	if st.BootSeq != appliedAtStop {
		t.Fatalf("boot seq %d, want the %d applied before the kill", st.BootSeq, appliedAtStop)
	}
	waitCaughtUp(t, p, f2.rep)
	if f2.rep.Tracked().Store().Len() != p.tr.Store().Len() {
		t.Fatalf("resumed replica has %d regions, primary %d",
			f2.rep.Tracked().Store().Len(), p.tr.Store().Len())
	}
	rel, err := f2.rep.Tracked().Store().Relation("down02", "attica")
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.tr.Store().Relation("down02", "attica")
	if err != nil {
		t.Fatal(err)
	}
	if rel != want {
		t.Fatalf("resumed relation %v, primary %v", rel, want)
	}
}

// TestReplicaEpochRebootstrap swaps the primary behind a stable URL (a
// restarted primary has a new epoch and an empty log): the replica must
// detect the epoch change and re-bootstrap from the new snapshot rather
// than apply records from the wrong incarnation.
func TestReplicaEpochRebootstrap(t *testing.T) {
	p1 := newPrimaryFixture(t, false)
	p2 := newPrimaryFixture(t, false)
	if err := p2.prim.AddRegion("second-epoch", "", "", workload.BoxRegion(600, 600, 615, 615)); err != nil {
		t.Fatal(err)
	}

	var target atomic.Value
	target.Store(p1.ts.URL)
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		base := target.Load().(string)
		req, err := http.NewRequestWithContext(r.Context(), r.Method, base+r.URL.RequestURI(), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	defer front.Close()

	f := newReplicaFixture(t, front.URL, "")
	if err := p1.prim.AddRegion("first-epoch", "", "", workload.BoxRegion(500, 500, 515, 515)); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, p1, f.rep)
	if got := f.rep.Status().Epoch; got != p1.prim.Epoch() {
		t.Fatalf("replica epoch %s, want %s", got, p1.prim.Epoch())
	}

	target.Store(p2.ts.URL) // "restart" the primary: new epoch, new world
	deadline := time.Now().Add(15 * time.Second)
	for f.rep.Status().Epoch != p2.prim.Epoch() {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck on epoch %s after the swap", f.rep.Status().Epoch)
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitCaughtUp(t, p2, f.rep)
	st := f.rep.Status()
	if st.Bootstraps < 2 {
		t.Fatalf("bootstraps = %d, want >= 2 (one per epoch)", st.Bootstraps)
	}
	if _, err := f.rep.Tracked().Store().Relation("second-epoch", "attica"); err != nil {
		t.Fatalf("replica missing the new epoch's region: %v", err)
	}
	// The old epoch's region must be gone: the worlds were not merged.
	if _, err := f.rep.Tracked().Store().Relation("first-epoch", "attica"); err == nil {
		t.Fatal("replica still serves the old epoch's region after re-bootstrap")
	}
}

// TestReplicaPctDisabled: a replica of a -pct=off primary refuses percent
// reads with 422 pct_disabled, as does the primary itself.
func TestReplicaPctDisabled(t *testing.T) {
	p := newPrimaryFixture(t, false)
	f := newReplicaFixture(t, p.ts.URL, "")
	waitCaughtUp(t, p, f.rep)
	for _, base := range []string{p.ts.URL, f.ts.URL} {
		status, _, body := get(t, base, "/v1/relation?primary=attica&reference=peloponnesos&pct=1", nil)
		if status != http.StatusUnprocessableEntity {
			t.Fatalf("%s: pct read on a pct-off node: %d: %s", base, status, body)
		}
		if code, _ := errorCode(t, body); code != "pct_disabled" {
			t.Fatalf("%s: code %q, want pct_disabled", base, code)
		}
		// The qualitative read still works.
		if status, _, _ := get(t, base, "/v1/relation?primary=attica&reference=peloponnesos", nil); status != http.StatusOK {
			t.Fatalf("%s: qualitative read broken on a pct-off node", base)
		}
	}
	if !f.rep.Pct() == false {
		t.Fatal("replica did not inherit pct=off from the primary snapshot headers")
	}
}

// TestRouterRouting: writes land on the primary, reads fan out across
// replicas, replication/admin traffic pins to the primary, and an unhealthy
// replica drops out of rotation.
func TestRouterRouting(t *testing.T) {
	p := newPrimaryFixture(t, false)
	f1 := newReplicaFixture(t, p.ts.URL, "")
	f2 := newReplicaFixture(t, p.ts.URL, "")

	rtr, err := replica.NewRouter(replica.RouterOptions{
		Primary:        p.ts.URL,
		Replicas:       []string{f1.ts.URL, f2.ts.URL},
		HealthInterval: 20 * time.Millisecond,
		Logger:         quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go rtr.Run(ctx)
	front := httptest.NewServer(rtr.Handler())
	defer front.Close()

	healthyReplicas := func() int {
		_, _, body := get(t, front.URL, "/v1/router/status", nil)
		var st struct {
			Data struct {
				Healthy int `json:"healthy_replicas"`
			} `json:"data"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		return st.Data.Healthy
	}
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timeout waiting for %s", what)
	}
	waitFor("both replicas healthy", func() bool { return healthyReplicas() == 2 })

	// A write through the router reaches the primary and replicates out.
	status, _, body := post(t, front.URL, "/v1/regions", []byte(`{"id":"via-router","wkt":"POLYGON ((800 800, 810 800, 810 810, 800 810, 800 800))"}`))
	if status != http.StatusCreated {
		t.Fatalf("write via router: %d: %s", status, body)
	}
	waitCaughtUp(t, p, f1.rep)
	waitCaughtUp(t, p, f2.rep)

	// Reads through the router see it (whichever replica answers), and the
	// staleness header on ETag routes proves a replica served them.
	for i := 0; i < 4; i++ {
		status, _, body := get(t, front.URL, "/v1/regions/via-router", nil)
		if status != http.StatusOK {
			t.Fatalf("read %d via router: %d: %s", i, status, body)
		}
		status, hdr, body := get(t, front.URL, "/v1/relations", nil)
		if status != http.StatusOK {
			t.Fatalf("relations read %d via router: %d: %s", i, status, body)
		}
		if hdr.Get(replica.HeaderStaleness) == "" {
			t.Fatalf("relations read %d was not served by a replica (no staleness header)", i)
		}
	}
	// Replication status pins to the primary even though it is a GET.
	_, _, body = get(t, front.URL, "/v1/replication/status", nil)
	var rs struct {
		Data struct {
			Role string `json:"role"`
		} `json:"data"`
	}
	if err := json.Unmarshal(body, &rs); err != nil || rs.Data.Role != "primary" {
		t.Fatalf("replication status via router answered by %q: %s", rs.Data.Role, body)
	}
	// POSTed queries are reads: they round-robin, not 421.
	qb, _ := json.Marshal(map[string]any{"q": "q(x, y) :- x N y"})
	if status, _, body := post(t, front.URL, "/v1/query", qb); status != http.StatusOK {
		t.Fatalf("query via router: %d: %s", status, body)
	}

	// Kill one replica: the router notices and keeps serving from the other.
	f1.ts.Close()
	waitFor("dead replica detected", func() bool { return healthyReplicas() == 1 })
	for i := 0; i < 4; i++ {
		if status, _, _ := get(t, front.URL, "/v1/regions/via-router", nil); status != http.StatusOK {
			t.Fatalf("read %d after replica death: %d", i, status)
		}
	}
}

// TestSeedPathMatchesDelta double-checks the replica apply path against
// geometry ground truth: after a random stream, every replica relation
// equals a from-scratch ComputeCDR over the replica's own geometries.
func TestSeedPathMatchesDelta(t *testing.T) {
	p := newPrimaryFixture(t, false)
	f := newReplicaFixture(t, p.ts.URL, "")
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 12; i++ {
		x, y := rng.Float64()*300+500, rng.Float64()*300+500
		if err := p.prim.AddRegion(fmt.Sprintf("g%02d", i), "", "", workload.BoxRegion(x, y, x+20, y+20)); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, p, f.rep)
	tr := f.rep.Tracked()
	err := tr.View(func(img *config.Image) error {
		for _, a := range img.Regions {
			for _, b := range img.Regions {
				if a.ID == b.ID {
					continue
				}
				want, err := core.ComputeCDR(a.Geometry(), b.Geometry())
				if err != nil {
					return err
				}
				got, err := tr.Store().Relation(a.ID, b.ID)
				if err != nil {
					return err
				}
				if got != want {
					return fmt.Errorf("replica %s/%s = %v, recompute %v", a.ID, b.ID, got, want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
