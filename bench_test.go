package cardirect

// This file regenerates every measurable claim of the paper (the experiment
// index of DESIGN.md §3). Tests assert the paper's exact numbers where the
// paper states them (edge counts, relations, the Greece configuration);
// benchmarks measure the performance claims (linearity, the clipping
// comparison the paper lists as future work). EXPERIMENTS.md records
// paper-vs-measured for each.

import (
	"fmt"
	"math"
	"testing"

	"cardirect/internal/baseline"
	"cardirect/internal/clip"
	"cardirect/internal/config"
	"cardirect/internal/core"
	"cardirect/internal/experiments"
	"cardirect/internal/geom"
	"cardirect/internal/index"
	"cardirect/internal/query"
	"cardirect/internal/reason"
	"cardirect/internal/workload"
)

// --- E1–E3: edge inflation (Fig. 3b, Fig. 3c, Example 3) ---

func TestE1EdgeCounts(t *testing.T) {
	ec, err := experiments.MeasureEdgeCounts("fig3b", experiments.Fig3bSquare(), experiments.RefRegion())
	if err != nil {
		t.Fatal(err)
	}
	if ec.EdgesIn != 4 || ec.CDREdges != 8 || ec.ClipEdges != 16 || ec.ClipPieces != 4 {
		t.Errorf("Fig 3b: in=%d cdr=%d clip=%d pieces=%d, paper wants 4/8/16/4",
			ec.EdgesIn, ec.CDREdges, ec.ClipEdges, ec.ClipPieces)
	}
}

func TestE2EdgeCounts(t *testing.T) {
	ec, err := experiments.MeasureEdgeCounts("fig3c", experiments.Fig3cTriangle(), experiments.RefRegion())
	if err != nil {
		t.Fatal(err)
	}
	if ec.EdgesIn != 3 || ec.CDREdges != 11 || ec.ClipEdges != 35 || ec.ClipPieces != 9 {
		t.Errorf("Fig 3c: in=%d cdr=%d clip=%d pieces=%d, paper wants 3/11/35/9 (2 triangles, 6 quadrangles, 1 pentagon)",
			ec.EdgesIn, ec.CDREdges, ec.ClipEdges, ec.ClipPieces)
	}
}

func TestE3Example3(t *testing.T) {
	ec, err := experiments.MeasureEdgeCounts("example3", experiments.Example3Quadrangle(), experiments.RefRegion())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := core.ParseRelation("B:W:NW:N:NE:E")
	if ec.Relation != want {
		t.Errorf("Example 3 relation = %v, want %v", ec.Relation, want)
	}
	if ec.EdgesIn != 4 || ec.CDREdges != 9 {
		t.Errorf("Example 3: in=%d cdr=%d, paper wants 4/9", ec.EdgesIn, ec.CDREdges)
	}
	// The paper's "19 edges" for clipping reads as edges *introduced*
	// (a 6-tile relation cannot clip into 5 pieces); see EXPERIMENTS.md.
	if ec.ClipEdges-ec.EdgesIn != 19 {
		t.Errorf("Example 3 clipping introduced %d edges, paper wants 19", ec.ClipEdges-ec.EdgesIn)
	}
}

func BenchmarkE1EdgeInflation(b *testing.B) {
	a, ref := experiments.Fig3bSquare(), experiments.RefRegion()
	b.Run("ComputeCDR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.ComputeCDR(a, ref); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Clipping", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := clip.ComputeCDR(a, ref); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE2EdgeInflation(b *testing.B) {
	a, ref := experiments.Fig3cTriangle(), experiments.RefRegion()
	b.Run("ComputeCDR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.ComputeCDR(a, ref); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Clipping", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := clip.ComputeCDR(a, ref); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E4–E5: linear scaling (Theorems 1 and 2) ---

var scalingSizes = []int{64, 256, 1024, 4096, 16384}

func BenchmarkE4ScalingCDR(b *testing.B) {
	g := workload.New(20040314)
	for _, c := range g.ScalingSweep(scalingSizes) {
		c := c
		b.Run(fmt.Sprintf("edges=%d", c.Edges), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.ComputeCDR(c.A, c.B); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(c.Edges), "ns/edge")
		})
	}
}

func BenchmarkE5ScalingCDRPct(b *testing.B) {
	g := workload.New(20040314)
	for _, c := range g.ScalingSweep(scalingSizes) {
		c := c
		b.Run(fmt.Sprintf("edges=%d", c.Edges), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.ComputeCDRPct(c.A, c.B); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(c.Edges), "ns/edge")
		})
	}
}

// TestE4LinearityShape is the non-benchmark linearity check: the ns/edge at
// the largest size must stay within a small factor of the smallest size's —
// superlinear behaviour would blow this up.
func TestE4LinearityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based; skipped in -short")
	}
	g := workload.New(20040314)
	cases := g.ScalingSweep([]int{256, 16384})
	perEdge := make([]float64, len(cases))
	for i, c := range cases {
		res := testing.Benchmark(func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				core.ComputeCDR(c.A, c.B)
			}
		})
		perEdge[i] = float64(res.NsPerOp()) / float64(c.Edges)
	}
	if ratio := perEdge[1] / perEdge[0]; ratio > 3 {
		t.Errorf("ns/edge grew %.2fx from 256 to 16384 edges — not linear", ratio)
	}
}

// --- E6–E7: versus clipping (the paper's future-work experiment) ---

func BenchmarkE6CDRvsClipping(b *testing.B) {
	g := workload.New(20040314)
	for _, c := range g.ScalingSweep([]int{256, 4096}) {
		c := c
		b.Run(fmt.Sprintf("ComputeCDR/edges=%d", c.Edges), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ComputeCDR(c.A, c.B)
			}
		})
		b.Run(fmt.Sprintf("Clipping/edges=%d", c.Edges), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				clip.ComputeCDR(c.A, c.B)
			}
		})
	}
}

func BenchmarkE7CDRPctVsClipping(b *testing.B) {
	g := workload.New(20040314)
	for _, c := range g.ScalingSweep([]int{256, 4096}) {
		c := c
		b.Run(fmt.Sprintf("ComputeCDRPct/edges=%d", c.Edges), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ComputeCDRPct(c.A, c.B)
			}
		})
		b.Run(fmt.Sprintf("ClipPct/edges=%d", c.Edges), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				clip.ComputeCDRPct(c.A, c.B)
			}
		})
	}
}

// TestE6Wins asserts the direction of the comparison: the single-pass
// algorithm must beat nine-tile clipping on a large workload.
func TestE6Wins(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based; skipped in -short")
	}
	g := workload.New(20040314)
	c := g.ScalingSweep([]int{4096})[0]
	cdr := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ComputeCDR(c.A, c.B)
		}
	})
	cl := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			clip.ComputeCDR(c.A, c.B)
		}
	})
	if cdr.NsPerOp() >= cl.NsPerOp() {
		t.Errorf("Compute-CDR (%d ns) not faster than clipping (%d ns)", cdr.NsPerOp(), cl.NsPerOp())
	}
}

// --- E8: single pass vs nine passes ---

func TestE8ScanCounts(t *testing.T) {
	g := workload.New(20040314)
	c := g.ScalingSweep([]int{1024})[0]
	_, stCDR, err := core.ComputeCDRStats(c.A, c.B)
	if err != nil {
		t.Fatal(err)
	}
	_, stClip, err := clip.ComputeCDRStats(c.A, c.B)
	if err != nil {
		t.Fatal(err)
	}
	if stCDR.Passes != 1 {
		t.Errorf("Compute-CDR passes = %d, want 1", stCDR.Passes)
	}
	if stClip.Passes != 9 {
		t.Errorf("clipping passes = %d, want 9", stClip.Passes)
	}
	if stCDR.EdgeVisits != 1024 || stClip.EdgeVisits != 9*1024 {
		t.Errorf("edge visits = %d vs %d, want 1024 vs 9216", stCDR.EdgeVisits, stClip.EdgeVisits)
	}
}

// --- E9: the Peloponnesian-war configuration (Fig. 11/12) ---

func TestE9Greece(t *testing.T) {
	img := config.Greece()
	pelop := img.FindRegion("peloponnesos").Geometry()
	attica := img.FindRegion("attica").Geometry()
	rel, err := core.ComputeCDR(pelop, attica)
	if err != nil {
		t.Fatal(err)
	}
	if rel.String() != "B:S:SW:W" {
		t.Errorf("Peloponnesos vs Attica = %v, paper (Fig. 12) says B:S:SW:W", rel)
	}
	m, _, err := core.ComputeCDRPct(attica, pelop)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Sum()-100) > 1e-9 {
		t.Errorf("matrix sum = %v", m.Sum())
	}
	if m.Get(core.TileNE)+m.Get(core.TileE) < 70 {
		t.Errorf("NE+E = %.1f%%, want the dominant share", m.Get(core.TileNE)+m.Get(core.TileE))
	}
}

func BenchmarkE9Greece(b *testing.B) {
	img := config.Greece()
	b.Run("ComputeAllRelations", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := img.ComputeRelations(false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ComputeAllRelationsPct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := img.ComputeRelations(true); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E10–E12: reasoning ---

func BenchmarkE10Inverse(b *testing.B) {
	reason.Inverse(core.S) // warm the tables outside the timer
	b.ResetTimer()
	rels := core.AllRelations()
	for i := 0; i < b.N; i++ {
		reason.Inverse(rels[i%len(rels)])
	}
}

func BenchmarkE11Composition(b *testing.B) {
	reason.Composition(core.N, core.S) // warm the tables
	rels := core.AllRelations()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reason.Composition(rels[i%97], rels[(i*31)%len(rels)])
	}
}

func BenchmarkE12Consistency(b *testing.B) {
	b.Run("sat-chain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := reason.NewNetwork()
			n.ConstrainRel("a", "b", core.N)
			n.ConstrainRel("b", "c", core.N)
			if _, err := n.Solve(reason.SolveOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unsat-cycle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := reason.NewNetwork()
			n.ConstrainRel("a", "b", core.N)
			n.ConstrainRel("b", "c", core.N)
			n.ConstrainRel("c", "a", core.N)
			if _, err := n.Solve(reason.SolveOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E13: query evaluation ---

func BenchmarkE13Query(b *testing.B) {
	img := config.Greece()
	ev, err := query.NewEvaluator(img)
	if err != nil {
		b.Fatal(err)
	}
	q, err := query.Parse("q(a, b) :- color(a) = red, color(b) = blue, a S:SW:W:NW:N:NE:E:SE b")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Eval(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E14: expressiveness vs approximations ---

func TestE14(t *testing.T) {
	g := workload.New(20040314)
	pairs := g.Pairs(400, 10)
	contradict := 0
	for _, p := range pairs {
		exact, err := core.ComputeCDR(p.A, p.B)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := baseline.MBB(p.A, p.B)
		if err != nil {
			t.Fatal(err)
		}
		// The MBB model is a sound upper approximation: it may add tiles
		// but never contradict.
		if baseline.CompareMBB(approx, exact) == baseline.AgreeContradict {
			contradict++
		}
	}
	if contradict != 0 {
		t.Errorf("MBB model contradicted the exact model on %d pairs", contradict)
	}
}

func BenchmarkE14Expressiveness(b *testing.B) {
	g := workload.New(20040314)
	pairs := g.Pairs(64, 10)
	b.Run("Exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			core.ComputeCDR(p.A, p.B)
		}
	})
	b.Run("MBB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			baseline.MBB(p.A, p.B)
		}
	})
	b.Run("Cone", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			baseline.CentroidCone(p.A, p.B, 0)
		}
	})
}

// --- E15: intersection computations ---

func TestE15OpCounts(t *testing.T) {
	g := workload.New(20040314)
	for _, c := range g.ScalingSweep([]int{256, 4096}) {
		_, stCDR, err := core.ComputeCDRStats(c.A, c.B)
		if err != nil {
			t.Fatal(err)
		}
		_, stClip, err := clip.ComputeCDRStats(c.A, c.B)
		if err != nil {
			t.Fatal(err)
		}
		if stCDR.Intersections >= stClip.Intersections {
			t.Errorf("edges=%d: Compute-CDR computed %d intersections, clipping %d — expected fewer",
				c.Edges, stCDR.Intersections, stClip.Intersections)
		}
	}
}

// --- Ablations (DESIGN.md §3) ---

// BenchmarkAblationQualitativeVsAreaDerived compares the paper's midpoint
// classification against deriving the qualitative relation from the
// percentage computation — the design choice that makes a separate
// Compute-CDR worthwhile.
func BenchmarkAblationQualitativeVsAreaDerived(b *testing.B) {
	g := workload.New(20040314)
	c := g.ScalingSweep([]int{4096})[0]
	b.Run("MidpointClassification", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ComputeCDR(c.A, c.B)
		}
	})
	b.Run("AreaDerived", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, areas, err := core.ComputeCDRPct(c.A, c.B)
			if err != nil {
				b.Fatal(err)
			}
			_ = areas.Relation(1e-12)
		}
	})
}

// TestAblationInteriorSideRule shows the tie-breaking rule is load-bearing:
// naive middle-column classification of on-line segments reports B:W where
// the definition demands W.
func TestAblationInteriorSideRule(t *testing.T) {
	b := experiments.RefRegion()
	a := workload.BoxRegion(-3, 1, 0, 5) // shares the line x = 0 with mbb(b)
	grid, err := core.NewGrid(b.BoundingBox())
	if err != nil {
		t.Fatal(err)
	}
	// Naive: classify split segments by midpoint only (ClassifyPoint).
	var naive core.Relation
	for _, p := range a.Clockwise() {
		for i := 0; i < p.NumEdges(); i++ {
			for _, s := range grid.SplitEdge(p.Edge(i), nil) {
				naive = naive.Union(core.Rel(grid.ClassifyPoint(s.Mid())))
			}
		}
	}
	exact, err := core.ComputeCDR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if exact != core.W {
		t.Fatalf("exact relation = %v, want W", exact)
	}
	if naive == exact {
		t.Error("naive midpoint classification should differ on shared-boundary input (it spuriously adds B)")
	}
	if !naive.Has(core.TileB) {
		t.Errorf("expected the naive result to contain the spurious B tile, got %v", naive)
	}
}

// BenchmarkAblationSinglePass quantifies what the nine scans cost clipping
// beyond its edge inflation: per-pass cost on identical input.
func BenchmarkAblationSinglePass(b *testing.B) {
	g := workload.New(20040314)
	c := g.ScalingSweep([]int{1024})[0]
	grid, err := core.NewGrid(c.B.BoundingBox())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("OnePassSplit", func(b *testing.B) {
		buf := make([]core.Grid, 0) // avoid unused import gymnastics
		_ = buf
		for i := 0; i < b.N; i++ {
			for _, p := range c.A {
				for j := 0; j < p.NumEdges(); j++ {
					grid.SplitEdge(p.Edge(j), nil)
				}
			}
		}
	})
	b.Run("NineTileClip", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := clip.Segment(c.A, c.B); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E18: the all-pairs batch engine (parallel + MBB tile pruning) ---

// allPairsWorkload is the 200-region scatter the batch benchmarks share: a
// mix of strictly-disjoint, contained, and grid-line-straddling bounding
// boxes (see workload.Scatter).
func allPairsWorkload(n int) []core.NamedRegion {
	g := workload.New(20040314)
	scattered := g.Scatter(n, 8)
	regions := make([]core.NamedRegion, n)
	for i, r := range scattered {
		regions[i] = core.NamedRegion{Name: fmt.Sprintf("r%04d", i), Region: r}
	}
	return regions
}

func benchmarkAllPairs(b *testing.B, n int, opt core.BatchOptions) {
	regions := allPairsWorkload(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := core.ComputeAllPairsOpt(regions, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != n*(n-1) {
			b.Fatalf("pairs = %d, want %d", len(out), n*(n-1))
		}
	}
	b.ReportMetric(float64(n*(n-1)), "pairs/op")
}

// BenchmarkAllPairsSequential is the seed path: one worker, full edge
// splitting for every ordered pair.
func BenchmarkAllPairsSequential(b *testing.B) {
	benchmarkAllPairs(b, 200, core.BatchOptions{Workers: 1, NoPrune: true})
}

// BenchmarkAllPairsPruned isolates the MBB tile-pruning fast path: still
// one worker, but box-separable pairs skip SplitEdge entirely.
func BenchmarkAllPairsPruned(b *testing.B) {
	benchmarkAllPairs(b, 200, core.BatchOptions{Workers: 1})
}

// BenchmarkAllPairsParallel is the production path: pruning plus the
// GOMAXPROCS worker pool (ComputeAllPairsParallel).
func BenchmarkAllPairsParallel(b *testing.B) {
	benchmarkAllPairs(b, 200, core.BatchOptions{})
}

// BenchmarkAllPairsParallelNoPrune isolates the pool's contribution with
// pruning disabled.
func BenchmarkAllPairsParallelNoPrune(b *testing.B) {
	benchmarkAllPairs(b, 200, core.BatchOptions{NoPrune: true})
}

// TestE18ParallelWins asserts the direction of the headline comparison: on
// the 200-region workload the pruned+parallel path must beat the sequential
// unpruned seed path.
func TestE18ParallelWins(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based; skipped in -short")
	}
	regions := allPairsWorkload(200)
	seq := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.ComputeAllPairsOpt(regions, core.BatchOptions{Workers: 1, NoPrune: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	par := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.ComputeAllPairsOpt(regions, core.BatchOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	if par.NsPerOp() >= seq.NsPerOp() {
		t.Errorf("pruned+parallel (%d ns) not faster than sequential seed path (%d ns)",
			par.NsPerOp(), seq.NsPerOp())
	}
}

// --- E16 (extension): R-tree-accelerated directional selection ---

func TestE16IndexedMatchesNaive(t *testing.T) {
	g := workload.New(20040314)
	geoms := map[string]geom.Region{}
	var items []index.Item
	for i := 0; i < 200; i++ {
		cx := float64(i%15) * 12
		cy := float64(i/15) * 12
		r := geom.Rgn(g.StarPolygon(cx, cy, 1, 4, 8))
		id := fmt.Sprintf("r%04d", i)
		geoms[id] = r
		items = append(items, index.Item{Box: r.BoundingBox(), ID: id})
	}
	tree, err := index.BulkLoad(items)
	if err != nil {
		t.Fatal(err)
	}
	ref := workload.BoxRegion(80, 70, 100, 90)
	allowed := core.NewRelationSet(core.SW, core.Rel(core.TileS, core.TileSW), core.NE)
	got, err := index.DirectionalSelect(tree, geoms, ref, allowed)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for id, r := range geoms {
		rel, err := core.ComputeCDR(r, ref)
		if err != nil {
			t.Fatal(err)
		}
		if allowed.Contains(rel) {
			want[id] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("indexed %d != naive %d", len(got), len(want))
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("spurious hit %s", id)
		}
	}
}

func BenchmarkE16IndexedSelection(b *testing.B) {
	g := workload.New(20040314)
	geoms := map[string]geom.Region{}
	var items []index.Item
	for i := 0; i < 1000; i++ {
		cx := float64(i%32) * 12
		cy := float64(i/32) * 12
		r := geom.Rgn(g.StarPolygon(cx, cy, 1, 4, 8))
		id := fmt.Sprintf("r%05d", i)
		geoms[id] = r
		items = append(items, index.Item{Box: r.BoundingBox(), ID: id})
	}
	tree, err := index.BulkLoad(items)
	if err != nil {
		b.Fatal(err)
	}
	ref := workload.BoxRegion(180, 180, 200, 200)
	allowed := core.NewRelationSet(core.SW, core.Rel(core.TileS, core.TileSW))
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := index.DirectionalSelect(tree, geoms, ref, allowed); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range geoms {
				rel, err := core.ComputeCDR(r, ref)
				if err != nil {
					b.Fatal(err)
				}
				_ = allowed.Contains(rel)
			}
		}
	})
}

// --- E19: the zero-allocation quantitative engine ---

// clusterPairsWorkload packs n regions into overlapping groups — the
// adversarial case for the percent fast path (see workload.Cluster).
func clusterPairsWorkload(n int) []core.NamedRegion {
	g := workload.New(20040314)
	clustered := g.Cluster(n, n/8, 8)
	regions := make([]core.NamedRegion, n)
	for i, r := range clustered {
		regions[i] = core.NamedRegion{Name: fmt.Sprintf("c%04d", i), Region: r}
	}
	return regions
}

// naiveAllPairsPct is the baseline the batch engine is measured against: the
// pairwise ComputeCDRPct double loop, rebuilding grids and edge tables for
// every ordered pair and materialising the same []core.PairPercent a caller
// replacing the batch engine would produce.
func naiveAllPairsPct(b *testing.B, regions []core.NamedRegion) []core.PairPercent {
	b.Helper()
	n := len(regions)
	out := make([]core.PairPercent, 0, n*(n-1))
	for _, p := range regions {
		for _, q := range regions {
			if p.Name == q.Name {
				continue
			}
			m, areas, err := core.ComputeCDRPct(p.Region, q.Region)
			if err != nil {
				b.Fatal(err)
			}
			out = append(out, core.PairPercent{Primary: p.Name, Reference: q.Name, Matrix: m, Areas: areas})
		}
	}
	return out
}

func benchmarkAllPairsPct(b *testing.B, regions []core.NamedRegion, opt core.BatchOptions) {
	n := len(regions)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := core.ComputeAllPairsPctOpt(regions, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != n*(n-1) {
			b.Fatalf("pairs = %d, want %d", len(out), n*(n-1))
		}
	}
	b.ReportMetric(float64(n*(n-1)), "pairs/op")
}

// BenchmarkAllPairsPctNaive is the seed path: pairwise Compute-CDR% with all
// per-pair setup repaid every time.
func BenchmarkAllPairsPctNaive(b *testing.B) {
	regions := allPairsWorkload(200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveAllPairsPct(b, regions)
	}
}

// BenchmarkAllPairsPctPruned isolates the prepared engine with the
// cached-area fast path: one worker, zero steady-state allocations.
func BenchmarkAllPairsPctPruned(b *testing.B) {
	benchmarkAllPairsPct(b, allPairsWorkload(200), core.BatchOptions{Workers: 1})
}

// BenchmarkAllPairsPctParallel is the production path: fast path plus the
// GOMAXPROCS worker pool (ComputeAllPairsPctParallel).
func BenchmarkAllPairsPctParallel(b *testing.B) {
	benchmarkAllPairsPct(b, allPairsWorkload(200), core.BatchOptions{})
}

// BenchmarkAllPairsPctParallelNoPrune isolates the pool's contribution with
// the fast path disabled.
func BenchmarkAllPairsPctParallelNoPrune(b *testing.B) {
	benchmarkAllPairsPct(b, allPairsWorkload(200), core.BatchOptions{NoPrune: true})
}

// BenchmarkAllPairsPctCluster runs the production path on the clustered
// workload, where overlapping boxes defeat most fast-path hits.
func BenchmarkAllPairsPctCluster(b *testing.B) {
	benchmarkAllPairsPct(b, clusterPairsWorkload(200), core.BatchOptions{})
}

// TestE19PctBatchWins asserts the tentpole acceptance criterion: on the
// 200-region scatter workload the prepared parallel percent batch must be at
// least 3x faster than the naive pairwise ComputeCDRPct loop.
func TestE19PctBatchWins(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based; skipped in -short")
	}
	regions := allPairsWorkload(200)
	naive := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			naiveAllPairsPct(b, regions)
		}
	})
	batch := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.ComputeAllPairsPctOpt(regions, core.BatchOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	speedup := float64(naive.NsPerOp()) / float64(batch.NsPerOp())
	// Under -race the instrumentation taxes the tight accumulation loops far
	// more than the naive path's allocations, so only the direction holds.
	want := 3.0
	if raceEnabled {
		want = 1.0
	}
	if speedup < want {
		t.Errorf("percent batch speedup = %.2fx (naive %d ns, batch %d ns), want ≥ %.0fx",
			speedup, naive.NsPerOp(), batch.NsPerOp(), want)
	} else {
		t.Logf("percent batch speedup = %.2fx", speedup)
	}
}

// TestE19SelectPrunes asserts the query-side acceptance criterion: on a
// scatter workload DirectionalSelect visits strictly fewer candidates than
// the index holds, with results identical to the naive scan.
func TestE19SelectPrunes(t *testing.T) {
	g := workload.New(20040314)
	scattered := g.Scatter(300, 8)
	geoms := map[string]geom.Region{}
	items := make([]index.Item, len(scattered))
	for i, r := range scattered {
		id := fmt.Sprintf("r%04d", i)
		geoms[id] = r
		items[i] = index.Item{Box: r.BoundingBox(), ID: id}
	}
	tree, err := index.BulkLoad(items)
	if err != nil {
		t.Fatal(err)
	}
	ref := workload.BoxRegion(80, 80, 95, 95)
	allowed := core.NewRelationSet(core.N, core.NE, core.Rel(core.TileN, core.TileNE))
	got, st, err := index.DirectionalSelectStats(tree, geoms, ref, allowed)
	if err != nil {
		t.Fatal(err)
	}
	if st.Candidates >= len(scattered) {
		t.Errorf("window queries visited %d of %d candidates — no pruning", st.Candidates, len(scattered))
	}
	want := map[string]bool{}
	for id, r := range geoms {
		rel, err := core.ComputeCDR(r, ref)
		if err != nil {
			t.Fatal(err)
		}
		if allowed.Contains(rel) {
			want[id] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("indexed %d matches != naive %d", len(got), len(want))
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("spurious hit %s", id)
		}
	}
	t.Logf("select stats: %+v", st)
}

// --- E20: the incremental relation store ---

// storeEditWorkload returns the E20 world plus two alternate geometries the
// edit benchmarks flip between (every SetGeometry is a real change).
func storeEditWorkload(n int) (regions []core.NamedRegion, editID string, alts [2]geom.Region) {
	regions = allPairsWorkload(n)
	editID = regions[n/2].Name
	spare := workload.New(99).Scatter(n, 8)
	alts = [2]geom.Region{spare[0], spare[1]}
	return regions, editID, alts
}

// BenchmarkStoreFullRecompute is the edit path the store replaces: a full
// one-core all-pairs sweep after every change.
func BenchmarkStoreFullRecompute(b *testing.B) {
	regions, _, _ := storeEditWorkload(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.ComputeAllPairsOpt(regions, core.BatchOptions{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(500*499), "pairs/op")
}

// BenchmarkStoreDeltaEdit is the store's edit path: re-prepare one region,
// recompute its row and column (2(n−1) pairs) on one core.
func BenchmarkStoreDeltaEdit(b *testing.B) {
	regions, editID, alts := storeEditWorkload(500)
	s, err := core.NewRelationStore(regions, core.StoreOptions{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.SetGeometry(editID, alts[i&1]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(2*499), "pairs/op")
}

// BenchmarkStoreDeltaEditPct is the quantitative store's edit path (percent
// matrices maintained too).
func BenchmarkStoreDeltaEditPct(b *testing.B) {
	regions, editID, alts := storeEditWorkload(500)
	s, err := core.NewRelationStore(regions, core.StoreOptions{Workers: 1, Pct: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.SetGeometry(editID, alts[i&1]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(2*499), "pairs/op")
}

// BenchmarkOneShotPooledScratch measures the scratch-pool satellite: the
// one-shot ComputeCDRPct path, which allocated a fresh split buffer and
// accumulators per call before the pool.
func BenchmarkOneShotPooledScratch(b *testing.B) {
	g := workload.New(20040314)
	c := g.ScalingSweep([]int{64})[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.ComputeCDRPct(c.A, c.B); err != nil {
			b.Fatal(err)
		}
	}
}

// TestE20StoreDeltaWins asserts the tentpole acceptance criterion: a
// single-region edit in a 500-region world through the store's delta path
// must be at least 25x faster than the full one-core batch recompute.
func TestE20StoreDeltaWins(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based; skipped in -short")
	}
	regions, editID, alts := storeEditWorkload(500)
	full := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.ComputeAllPairsOpt(regions, core.BatchOptions{Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	s, err := core.NewRelationStore(regions, core.StoreOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	flip := 0
	delta := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			flip++
			if err := s.SetGeometry(editID, alts[flip&1]); err != nil {
				b.Fatal(err)
			}
		}
	})
	speedup := float64(full.NsPerOp()) / float64(delta.NsPerOp())
	// The asymptotic ratio is n/2 = 250; ≥25x leaves an order of magnitude of
	// slack for machine noise. Under -race the Prepare in the delta path is
	// taxed disproportionately, so only a reduced bound is asserted.
	want := 25.0
	if raceEnabled {
		want = 10.0
	}
	if speedup < want {
		t.Errorf("store delta speedup = %.1fx (full %d ns, delta %d ns), want ≥ %.0fx",
			speedup, full.NsPerOp(), delta.NsPerOp(), want)
	} else {
		t.Logf("store delta speedup = %.1fx (full %.2f ms, delta %.1f µs)",
			speedup, float64(full.NsPerOp())/1e6, float64(delta.NsPerOp())/1e3)
	}
}
