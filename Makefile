# CARDIRECT reproduction — developer targets.
#
# `make check` is the gate every change must pass: vet, a full build, and
# the test suite under the race detector (the parallel batch engine in
# internal/core is exercised with real worker pools, so -race is not
# optional).

GO ?= go

.PHONY: check vet build test race smoke fuzz-smoke bench bench-short experiments

check: vet build race smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# End-to-end smoke of the cardirectd binary: serve the Greece fixture on
# an ephemeral port, hit the API over the wire, SIGTERM to a clean exit —
# then the durable shape: SIGKILL a daemon mid-edit-stream and assert the
# restart recovers a prefix of the acknowledged edits with relations
# identical to a from-scratch computation.
smoke:
	$(GO) test -count=1 -run 'TestCardirectdSmoke|TestCardirectdCrashRecovery' ./cmd/cardirectd

# Short fuzz runs of the crash-surface decoders: WAL replay and the
# snapshot pct attribute. CI runs these; locally, crank -fuzztime.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzWALReplay -fuzztime=10s ./internal/wal
	$(GO) test -run='^$$' -fuzz=FuzzParsePct -fuzztime=10s ./internal/config

# The paper-shaped benchmark tables (see EXPERIMENTS.md).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# One iteration of every benchmark — a smoke test that the benchmark
# harness itself still runs; CI wires this next to `make check`.
bench-short:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ ./...

experiments:
	$(GO) run ./cmd/cdrbench -quick
