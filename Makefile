# CARDIRECT reproduction — developer targets.
#
# `make check` is the gate every change must pass: vet, a full build, and
# the test suite under the race detector (the parallel batch engine in
# internal/core is exercised with real worker pools, so -race is not
# optional).

GO ?= go

.PHONY: check vet build test race smoke bench bench-short experiments

check: vet build race smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# End-to-end smoke of the cardirectd binary: build it, serve the Greece
# fixture on an ephemeral port, hit /healthz and a relation query over
# the wire, SIGTERM, assert a clean zero exit.
smoke:
	$(GO) test -count=1 -run TestCardirectdSmoke ./cmd/cardirectd

# The paper-shaped benchmark tables (see EXPERIMENTS.md).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# One iteration of every benchmark — a smoke test that the benchmark
# harness itself still runs; CI wires this next to `make check`.
bench-short:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ ./...

experiments:
	$(GO) run ./cmd/cdrbench -quick
