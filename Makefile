# CARDIRECT reproduction — developer targets.
#
# `make check` is the gate every change must pass: vet, a full build, and
# the test suite under the race detector (the parallel batch engine in
# internal/core is exercised with real worker pools, so -race is not
# optional).

GO ?= go

.PHONY: check vet build test race smoke lint fuzz-smoke bench bench-short bench-trend bench-baseline experiments

check: vet build race smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -shuffle=on randomises test order within each package so order-dependent
# tests (shared fixtures, leaked globals) fail in CI instead of in the field.
race:
	$(GO) test -race -shuffle=on ./...

# End-to-end smoke of the cardirectd binary: serve the Greece fixture on
# an ephemeral port, hit the API over the wire, SIGTERM to a clean exit —
# then the durable shape: SIGKILL a daemon mid-edit-stream and assert the
# restart recovers a prefix of the acknowledged edits with relations
# identical to a from-scratch computation. The replication shape rides
# along: SIGKILL a tailing replica mid-stream, restart it on the same
# cache, assert it resumes from its last applied sequence and converges
# to the primary's generation — plus a 3-process primary/replica/router
# round-trip.
smoke:
	$(GO) test -count=1 -run 'TestCardirectdSmoke|TestCardirectdCrashRecovery|TestCardirectdReplicaResume|TestCardirectdRouter' ./cmd/cardirectd

# Static analysis beyond vet. staticcheck is optional tooling: run it when
# the binary is on PATH, skip with a note when it is not (CI images and the
# dev container may not ship it; nothing is downloaded here).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; ran go vet only"; \
	fi

# Short fuzz runs of the crash-surface decoders — WAL replay and the
# snapshot pct attribute — plus the planner differential: random queries
# over a fixed world must bind identically with the planner on and off.
# CI runs these; locally, crank -fuzztime.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzWALReplay -fuzztime=10s ./internal/wal
	$(GO) test -run='^$$' -fuzz=FuzzParsePct -fuzztime=10s ./internal/config
	$(GO) test -run='^$$' -fuzz=FuzzPlannerDifferential -fuzztime=10s ./internal/query
	$(GO) test -run='^$$' -fuzz=FuzzLoDDifferential -fuzztime=10s ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzSolverDifferential -fuzztime=10s ./internal/reason
	$(GO) test -run='^$$' -fuzz=FuzzReplicationStream -fuzztime=10s ./internal/replica

# The paper-shaped benchmark tables (see EXPERIMENTS.md).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# One iteration of every benchmark — a smoke test that the benchmark
# harness itself still runs; CI wires this next to `make check`.
bench-short:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ ./...

# Regression gate over the raw-speed suite (E21), the query-planner
# suite (E22), the huge-world tier (E23), the reasoning pipeline
# (E24) and the replication tier (E25): re-measure and compare
# against the committed baselines;
# timing metrics may not grow — and speedups may not shrink — by more
# than TREND_THRESHOLD (fraction). CI runs the quick flavour against
# BENCH_*_quick.json; a full local run compares against the full
# baselines. The default threshold leaves headroom for the timing jitter
# of shared/virtualized hardware — the sub-millisecond metrics tail out
# past 35% there even as best-of-three measurements; tighten it on quiet
# bare metal. The hard perf floors (SoA ≥1.5x, binary recovery ≥2x,
# planner ≥5x) are enforced as noise-robust ratios by the test suite
# regardless, so the trend gate's job is catching gross drift, not 10%
# creep.
TREND_THRESHOLD ?= 0.5

bench-trend:
	$(GO) run ./cmd/cdrbench -quick -only E21 -compare baselines/BENCH_E21_quick.json -threshold $(TREND_THRESHOLD)
	$(GO) run ./cmd/cdrbench -quick -only E22 -compare baselines/BENCH_E22_quick.json -threshold $(TREND_THRESHOLD)
	$(GO) run ./cmd/cdrbench -quick -only E23 -compare baselines/BENCH_E23_quick.json -threshold $(TREND_THRESHOLD)
	$(GO) run ./cmd/cdrbench -quick -only E24 -compare baselines/BENCH_E24_quick.json -threshold $(TREND_THRESHOLD)
	$(GO) run ./cmd/cdrbench -quick -only E25 -compare baselines/BENCH_E25_quick.json -threshold $(TREND_THRESHOLD)

# Full-size trend checks (minutes, not seconds). The full E23 run also
# asserts the huge-world acceptance floor (>=10x on 10^5 regions) inside
# the experiment itself, the full E24 run asserts the parallel-solver
# floor (>=2x on the adversarial networks) the same way, and the full
# E25 run asserts the WAL-catch-up-beats-rebuild floor (>=1.2x).
bench-trend-full:
	$(GO) run ./cmd/cdrbench -only E21 -compare baselines/BENCH_E21.json -threshold $(TREND_THRESHOLD)
	$(GO) run ./cmd/cdrbench -only E22 -compare baselines/BENCH_E22.json -threshold $(TREND_THRESHOLD)
	$(GO) run ./cmd/cdrbench -only E23 -compare baselines/BENCH_E23.json -threshold $(TREND_THRESHOLD)
	$(GO) run ./cmd/cdrbench -only E24 -compare baselines/BENCH_E24.json -threshold $(TREND_THRESHOLD)
	$(GO) run ./cmd/cdrbench -only E25 -compare baselines/BENCH_E25.json -threshold $(TREND_THRESHOLD)

# Re-record the committed baselines (run on a quiet machine, then commit
# baselines/*.json). -json writes straight into baselines/, with a _quick
# suffix for quick runs.
bench-baseline:
	$(GO) run ./cmd/cdrbench -quick -only E21 -json
	$(GO) run ./cmd/cdrbench -only E21 -json
	$(GO) run ./cmd/cdrbench -quick -only E22 -json
	$(GO) run ./cmd/cdrbench -only E22 -json
	$(GO) run ./cmd/cdrbench -quick -only E23 -json
	$(GO) run ./cmd/cdrbench -only E23 -json
	$(GO) run ./cmd/cdrbench -quick -only E24 -json
	$(GO) run ./cmd/cdrbench -only E24 -json
	$(GO) run ./cmd/cdrbench -quick -only E25 -json
	$(GO) run ./cmd/cdrbench -only E25 -json

experiments:
	$(GO) run ./cmd/cdrbench -quick
