package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI drives the command with the given args and stdin, returning stdout.
func runCLI(t *testing.T, stdin string, args ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	err := run(args, strings.NewReader(stdin), &out)
	return out.String(), err
}

// greeceXML produces the Fig. 11 configuration document once per test.
func greeceXML(t *testing.T) string {
	t.Helper()
	out, err := runCLI(t, "", "greece")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCLINoArgs(t *testing.T) {
	if _, err := runCLI(t, ""); err == nil {
		t.Error("missing subcommand should fail")
	}
	if _, err := runCLI(t, "", "frobnicate"); err == nil {
		t.Error("unknown subcommand should fail")
	}
}

func TestCLIGreeceValidateRoundtrip(t *testing.T) {
	xml := greeceXML(t)
	out, err := runCLI(t, xml, "validate")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "OK: 11 region(s)") {
		t.Errorf("validate output: %q", out)
	}
}

func TestCLICompute(t *testing.T) {
	xml := greeceXML(t)
	out, err := runCLI(t, xml, "compute", "-pct")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `primary="peloponnesos"`) || !strings.Contains(out, "pct=") {
		t.Errorf("compute output missing relations/pct")
	}
	// Recheck validity through the validate subcommand.
	check, err := runCLI(t, out, "validate")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(check, "110 relation(s)") {
		t.Errorf("validate after compute: %q", check)
	}
}

func TestCLIQuery(t *testing.T) {
	xml := greeceXML(t)
	out, err := runCLI(t, xml, "query",
		"q(a, b) :- color(a) = red, color(b) = blue, a S:SW:W:NW:N:NE:E:SE b")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1 answer(s)") || !strings.Contains(out, "a=peloponnesos, b=pylos") {
		t.Errorf("query output: %q", out)
	}
	// Malformed query errors.
	if _, err := runCLI(t, xml, "query", "q() :-"); err == nil {
		t.Error("malformed query should fail")
	}
	if _, err := runCLI(t, xml, "query"); err == nil {
		t.Error("missing query argument should fail")
	}
}

func TestCLIDescribe(t *testing.T) {
	xml := greeceXML(t)
	out, err := runCLI(t, xml, "describe")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Hellas", "attica", "peloponnesos", "relation "} {
		if !strings.Contains(out, frag) {
			t.Errorf("describe output missing %q", frag)
		}
	}
}

func TestCLIRelation(t *testing.T) {
	xml := greeceXML(t)
	out, err := runCLI(t, xml, "relation", "-pct", "peloponnesos", "attica")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "peloponnesos B:S:SW:W attica") {
		t.Errorf("relation output: %q", out)
	}
	if !strings.Contains(out, "%") {
		t.Error("missing percentage matrix")
	}
	if _, err := runCLI(t, xml, "relation", "nope", "attica"); err == nil {
		t.Error("unknown region should fail")
	}
	if _, err := runCLI(t, xml, "relation", "attica"); err == nil {
		t.Error("missing argument should fail")
	}
}

func TestCLIInverseCompose(t *testing.T) {
	out, err := runCLI(t, "", "inverse", "S")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "NW:NE") || !strings.Contains(out, "5 relation(s)") {
		t.Errorf("inverse output: %q", out)
	}
	out, err = runCLI(t, "", "compose", "SW", "SW")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "= SW") {
		t.Errorf("compose output: %q", out)
	}
	if _, err := runCLI(t, "", "inverse", "X:Y"); err == nil {
		t.Error("bad relation should fail")
	}
	if _, err := runCLI(t, "", "compose", "S"); err == nil {
		t.Error("missing operand should fail")
	}
	if _, err := runCLI(t, "", "compose", "S", "Q"); err == nil {
		t.Error("bad second operand should fail")
	}
}

func TestCLIFileIO(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hellas.xml")
	if _, err := runCLI(t, "", "greece", "-out", path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "", "validate", "-in", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "OK") {
		t.Errorf("validate -in: %q", out)
	}
	if _, err := runCLI(t, "", "validate", "-in", filepath.Join(dir, "missing.xml")); err == nil {
		t.Error("missing input file should fail")
	}
}

func TestCLIGarbageInput(t *testing.T) {
	if _, err := runCLI(t, "<<<not xml", "validate"); err == nil {
		t.Error("garbage stdin should fail")
	}
	if _, err := runCLI(t, "<<<not xml", "compute"); err == nil {
		t.Error("garbage stdin should fail compute")
	}
}

func TestCLITopo(t *testing.T) {
	xml := greeceXML(t)
	out, err := runCLI(t, xml, "topo", "peloponnesos", "attica")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"B:S:SW:W", "EC", "touch"} {
		if !strings.Contains(out, frag) {
			t.Errorf("topo output missing %q: %q", frag, out)
		}
	}
	out, err = runCLI(t, xml, "topo", "peloponnesos", "pylos")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "DC") {
		t.Errorf("pylos should be DC of peloponnesos: %q", out)
	}
	if _, err := runCLI(t, xml, "topo", "nope", "attica"); err == nil {
		t.Error("unknown region should fail")
	}
	if _, err := runCLI(t, xml, "topo", "attica"); err == nil {
		t.Error("missing argument should fail")
	}
}
