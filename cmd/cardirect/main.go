// Command cardirect is the command-line counterpart of the paper's
// CARDIRECT tool: it loads a configuration (an annotated image as XML per
// the paper's DTD), computes cardinal direction relations with the paper's
// linear algorithms, answers queries, and validates documents.
//
// Usage:
//
//	cardirect compute  [-pct] [-in file] [-out file]   recompute all relations
//	cardirect query    [-in file] <query>              run a query
//	cardirect validate [-in file]                      check a document
//	cardirect describe [-in file]                      list regions and relations
//	cardirect greece   [-out file]                     emit the Fig. 11 fixture
//	cardirect relation [-pct] [-in file] <p> <q>       one pair's relation
//	cardirect inverse  <relation>                      inv(R)
//	cardirect compose  <r1> <r2>                       composition
//	cardirect topo     [-in file] <p> <q>              topology + distance
//
// With -in omitted (or "-") the document is read from stdin; with -out
// omitted results go to stdout.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cardirect/internal/config"
	"cardirect/internal/core"
	"cardirect/internal/query"
	"cardirect/internal/reason"
	"cardirect/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cardirect:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand (compute | query | validate | describe | greece)")
	}
	switch args[0] {
	case "compute":
		return cmdCompute(args[1:], stdin, stdout)
	case "query":
		return cmdQuery(args[1:], stdin, stdout)
	case "validate":
		return cmdValidate(args[1:], stdin, stdout)
	case "describe":
		return cmdDescribe(args[1:], stdin, stdout)
	case "greece":
		return cmdGreece(args[1:], stdout)
	case "relation":
		return cmdRelation(args[1:], stdin, stdout)
	case "inverse":
		return cmdInverse(args[1:], stdout)
	case "compose":
		return cmdCompose(args[1:], stdout)
	case "topo":
		return cmdTopo(args[1:], stdin, stdout)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// loadInput reads the configuration named by -in ("-" or "" = stdin).
func loadInput(path string, stdin io.Reader) (*config.Image, error) {
	var r io.Reader = stdin
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return config.Load(r)
}

// openOutput resolves -out ("" or "-" = the provided stdout writer).
func openOutput(path string, stdout io.Writer) (io.Writer, func() error, error) {
	if path == "" || path == "-" {
		return stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func cmdCompute(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("compute", flag.ContinueOnError)
	in := fs.String("in", "", "input configuration (default stdin)")
	out := fs.String("out", "", "output file (default stdout)")
	pct := fs.Bool("pct", false, "also compute percentage matrices")
	if err := fs.Parse(args); err != nil {
		return err
	}
	img, err := loadInput(*in, stdin)
	if err != nil {
		return err
	}
	if err := img.Validate(); err != nil {
		return err
	}
	if err := img.ComputeRelations(*pct); err != nil {
		return err
	}
	w, closeFn, err := openOutput(*out, stdout)
	if err != nil {
		return err
	}
	if err := img.Save(w); err != nil {
		closeFn()
		return err
	}
	return closeFn()
}

func cmdQuery(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	in := fs.String("in", "", "input configuration (default stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("query: exactly one query argument expected")
	}
	img, err := loadInput(*in, stdin)
	if err != nil {
		return err
	}
	ev, err := query.NewEvaluator(img)
	if err != nil {
		return err
	}
	q, err := query.Parse(fs.Arg(0))
	if err != nil {
		return err
	}
	answers, err := ev.Eval(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s\n%d answer(s)\n", q, len(answers))
	for _, b := range answers {
		for i, v := range q.Vars {
			if i > 0 {
				fmt.Fprint(stdout, ", ")
			}
			fmt.Fprintf(stdout, "%s=%s", v, b[v])
		}
		fmt.Fprintln(stdout)
	}
	return nil
}

func cmdValidate(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	in := fs.String("in", "", "input configuration (default stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	img, err := loadInput(*in, stdin)
	if err != nil {
		return err
	}
	if err := img.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "OK: %d region(s), %d relation(s)\n", len(img.Regions), len(img.Relations))
	return nil
}

func cmdDescribe(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("describe", flag.ContinueOnError)
	in := fs.String("in", "", "input configuration (default stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	img, err := loadInput(*in, stdin)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "Image %q (file %q)\n", img.Name, img.File)
	for i := range img.Regions {
		r := &img.Regions[i]
		g := r.Geometry()
		fmt.Fprintf(stdout, "  region %-14s name=%-14q color=%-7s polygons=%d edges=%d area=%.3f box=%v\n",
			r.ID, r.Name, r.Color, len(r.Polygons), g.NumEdges(), g.Area(), g.BoundingBox())
	}
	for _, rel := range img.Relations {
		fmt.Fprintf(stdout, "  relation %s %s %s\n", rel.Primary, rel.Type, rel.Reference)
		if rel.Pct != "" {
			if m, err := config.ParsePct(rel.Pct); err == nil {
				for _, t := range core.Tiles() {
					if m.Get(t) > 0 {
						fmt.Fprintf(stdout, "    %-2v %.1f%%\n", t, m.Get(t))
					}
				}
			}
		}
	}
	return nil
}

func cmdGreece(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("greece", flag.ContinueOnError)
	out := fs.String("out", "", "output file (default stdout)")
	pct := fs.Bool("pct", false, "include percentage matrices")
	if err := fs.Parse(args); err != nil {
		return err
	}
	img := config.Greece()
	if err := img.ComputeRelations(*pct); err != nil {
		return err
	}
	w, closeFn, err := openOutput(*out, stdout)
	if err != nil {
		return err
	}
	if err := img.Save(w); err != nil {
		closeFn()
		return err
	}
	return closeFn()
}

func cmdRelation(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("relation", flag.ContinueOnError)
	in := fs.String("in", "", "input configuration (default stdin)")
	pct := fs.Bool("pct", false, "also print the percentage matrix")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("relation: expected <primary-id> <reference-id>")
	}
	img, err := loadInput(*in, stdin)
	if err != nil {
		return err
	}
	p := img.FindRegion(fs.Arg(0))
	q := img.FindRegion(fs.Arg(1))
	if p == nil || q == nil {
		return fmt.Errorf("relation: unknown region id(s) %q / %q", fs.Arg(0), fs.Arg(1))
	}
	rel, err := core.ComputeCDR(p.Geometry(), q.Geometry())
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s %v %s\n%s\n", p.ID, rel, q.ID, rel.MatrixString())
	if *pct {
		m, _, err := core.ComputeCDRPct(p.Geometry(), q.Geometry())
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%v\n", m)
	}
	return nil
}

func cmdInverse(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("inverse", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("inverse: expected one relation (e.g. B:S:SW)")
	}
	r, err := core.ParseRelation(fs.Arg(0))
	if err != nil {
		return err
	}
	inv := reason.Inverse(r)
	fmt.Fprintf(stdout, "inv(%v) = %v   (%d relation(s))\n", r, inv, inv.Len())
	return nil
}

func cmdCompose(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("compose", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("compose: expected two relations (e.g. N B:S)")
	}
	r1, err := core.ParseRelation(fs.Arg(0))
	if err != nil {
		return err
	}
	r2, err := core.ParseRelation(fs.Arg(1))
	if err != nil {
		return err
	}
	comp := reason.Composition(r1, r2)
	fmt.Fprintf(stdout, "comp(%v, %v) = %v   (%d relation(s))\n", r1, r2, comp, comp.Len())
	return nil
}

func cmdTopo(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("topo", flag.ContinueOnError)
	in := fs.String("in", "", "input configuration (default stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("topo: expected <primary-id> <reference-id>")
	}
	img, err := loadInput(*in, stdin)
	if err != nil {
		return err
	}
	p := img.FindRegion(fs.Arg(0))
	q := img.FindRegion(fs.Arg(1))
	if p == nil || q == nil {
		return fmt.Errorf("topo: unknown region id(s) %q / %q", fs.Arg(0), fs.Arg(1))
	}
	a, b := p.Geometry(), q.Geometry()
	dir, err := core.ComputeCDR(a, b)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "direction: %s %v %s\n", p.ID, dir, q.ID)
	fmt.Fprintf(stdout, "topology:  %v\n", topo.Classify(a, b, 0))
	fmt.Fprintf(stdout, "distance:  %v (min %.4f, overlap area %.4f)\n",
		topo.ClassifyDistance(a, b), topo.MinDistance(a, b), topo.IntersectionArea(a, b))
	return nil
}
