package main

import (
	"bytes"
	"strings"
	"testing"

	"cardirect/internal/config"
)

func gen(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestGenerateKinds(t *testing.T) {
	for _, kind := range []string{"star", "multi", "country"} {
		out := gen(t, "-kind", kind, "-regions", "4", "-seed", "3")
		img, err := config.Parse([]byte(out))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := img.Validate(); err != nil {
			t.Fatalf("%s: generated config invalid: %v", kind, err)
		}
		if len(img.Regions) != 4 {
			t.Errorf("%s: regions = %d", kind, len(img.Regions))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := gen(t, "-seed", "9", "-regions", "3")
	b := gen(t, "-seed", "9", "-regions", "3")
	if a != b {
		t.Error("same seed produced different output")
	}
	c := gen(t, "-seed", "10", "-regions", "3")
	if a == c {
		t.Error("different seeds produced identical output")
	}
}

func TestGenerateErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-regions", "0"}, &out); err == nil {
		t.Error("zero regions should fail")
	}
	if err := run([]string{"-kind", "blob"}, &out); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestGeneratedConfigIsQueryable(t *testing.T) {
	out := gen(t, "-kind", "star", "-regions", "9", "-seed", "4")
	img, err := config.Parse([]byte(out))
	if err != nil {
		t.Fatal(err)
	}
	if err := img.ComputeRelations(false); err != nil {
		t.Fatal(err)
	}
	if len(img.Relations) != 9*8 {
		t.Errorf("relations = %d", len(img.Relations))
	}
	if !strings.Contains(out, "synthetic-star-4") {
		t.Error("image name missing")
	}
}
