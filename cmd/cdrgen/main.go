// Command cdrgen generates synthetic CARDIRECT configurations for testing
// and benchmarking: random star-polygon regions, multi-component regions,
// or country-like regions with islands and an enclave hole, emitted in the
// paper's XML format.
//
// Usage:
//
//	cdrgen [-seed N] [-regions N] [-components N] [-edges N]
//	       [-kind star|multi|country] [-window W] [-out file]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cardirect/internal/config"
	"cardirect/internal/geom"
	"cardirect/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cdrgen:", err)
		os.Exit(1)
	}
}

var colors = []string{"blue", "red", "black", "green", "orange"}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cdrgen", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed (deterministic output)")
	nRegions := fs.Int("regions", 8, "number of regions")
	components := fs.Int("components", 1, "polygons per region (multi kind)")
	edges := fs.Int("edges", 8, "edges per polygon")
	kind := fs.String("kind", "star", "region kind: star | multi | country")
	window := fs.Float64("window", 100, "side of the square placement window")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nRegions < 1 {
		return fmt.Errorf("need at least one region")
	}

	g := workload.New(*seed)
	img := &config.Image{Name: fmt.Sprintf("synthetic-%s-%d", *kind, *seed), File: "synthetic.png"}
	cell := *window / float64(ceilSqrt(*nRegions))
	for i := 0; i < *nRegions; i++ {
		cx := (float64(i%ceilSqrt(*nRegions)) + 0.5) * cell
		cy := (float64(i/ceilSqrt(*nRegions)) + 0.5) * cell
		var region geom.Region
		switch *kind {
		case "star":
			region = geom.Rgn(g.StarPolygon(cx, cy, cell*0.1, cell*0.45, *edges))
		case "multi":
			w := geom.Rect{MinX: cx - cell/2, MinY: cy - cell/2, MaxX: cx + cell/2, MaxY: cy + cell/2}
			region = g.Region(w, *components, *edges)
		case "country":
			region = g.Country(cx, cy, cell*0.8, *edges, 3)
		default:
			return fmt.Errorf("unknown kind %q", *kind)
		}
		r := config.Region{
			ID:    fmt.Sprintf("r%03d", i),
			Name:  fmt.Sprintf("Region %d", i),
			Color: colors[i%len(colors)],
		}
		r.SetGeometry(region)
		img.Regions = append(img.Regions, r)
	}
	if err := img.Validate(); err != nil {
		return fmt.Errorf("generated configuration invalid: %w", err)
	}

	w := stdout
	if *out != "" && *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return img.Save(w)
}

func ceilSqrt(n int) int {
	k := 1
	for k*k < n {
		k++
	}
	return k
}
