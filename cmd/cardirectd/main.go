// Command cardirectd serves a CARDIRECT configuration over HTTP/JSON: the
// paper's interactive tool (§4) as a long-running service. It loads an
// annotated image (the XML format of the paper's DTD, or the built-in
// Fig. 11 Greece fixture), builds the delta-maintained relation store and
// live R-tree behind it, and answers pair relations, directional
// selections, conjunctive queries and region edits concurrently — see
// internal/serve for the endpoint surface and API.md for schemas.
//
// Usage:
//
//	cardirectd -greece                        serve the Fig. 11 fixture
//	cardirectd -config hellas.xml             serve an XML document
//	cardirectd -greece -data /var/lib/cardirect   durable: snapshot + WAL
//	cardirectd -data /var/lib/cardirect           recover, no seed needed
//	cardirectd -addr :8080 -request-timeout 30s -workers 8 ...
//
// With -data the service is durable: edits are write-ahead logged before
// they are acknowledged (-fsync picks the discipline), the directory is
// recovered on startup (newest snapshot + WAL tail; -config/-greece only
// seed a directory that holds no snapshot yet), and /api/admin/snapshot
// rotates the generation. See the Durability section of README.md.
//
// The process is role-aware (-role):
//
//	cardirectd -role primary -greece               accept writes, ship the WAL
//	cardirectd -role replica -follow http://p:8080 \
//	           -replica-data /var/lib/replica      tail the primary, serve reads
//	cardirectd -role router -primary http://p:8080 \
//	           -replicas http://r1:8081,http://r2:8082   fan reads out, route writes
//
// A primary serves GET /v1/replication/{snapshot,wal,status}; replicas
// bootstrap from the snapshot, apply shipped records through the store's
// delta path, reject writes with 421 not_primary, and honor the
// Cardirect-Min-Generation freshness contract. The router forwards writes
// (and replication/admin/debug traffic) to the primary and round-robins
// reads across healthy replicas. See the Scale-out section of README.md.
//
// The process runs until SIGINT/SIGTERM, then shuts down gracefully:
// in-flight requests get -shutdown-timeout to finish, new connections are
// refused, a final snapshot is written when -snapshot-on-exit is set, and
// the exit code is zero only on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cardirect/internal/config"
	"cardirect/internal/core"
	"cardirect/internal/persist"
	"cardirect/internal/replica"
	"cardirect/internal/serve"
	"cardirect/internal/wal"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cardirectd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("cardirectd", flag.ContinueOnError)
	var (
		addr            = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		role            = fs.String("role", "primary", "process role: primary, replica or router")
		configPath      = fs.String("config", "", "CARDIRECT XML configuration to serve")
		greece          = fs.Bool("greece", false, "serve the built-in Fig. 11 Greece configuration")
		pct             = fs.String("pct", "on", "percent-matrix tracking: on or off (off skips eager pct matrices; pct endpoints answer 422)")
		workers         = fs.Int("workers", 0, "worker-pool size for batch and delta recomputation (0 = GOMAXPROCS)")
		requestTimeout  = fs.Duration("request-timeout", 30*time.Second, "per-request timeout (0 = none)")
		maxBody         = fs.Int64("max-body", 1<<20, "request body size limit in bytes")
		maxBulk         = fs.Int64("max-bulk", 64<<20, "POST /api/bulk body size limit in bytes (NDJSON streams)")
		shutdownTimeout = fs.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown drain budget")
		jsonLogs        = fs.Bool("log-json", false, "emit JSON logs instead of text")
		dataDir         = fs.String("data", "", "data directory for durable operation (snapshot + write-ahead log)")
		fsyncPolicy     = fs.String("fsync", "always", "WAL fsync policy with -data: always, interval or never")
		fsyncInterval   = fs.Duration("fsync-interval", time.Second, "fsync cadence under -fsync interval")
		snapOnExit      = fs.Bool("snapshot-on-exit", true, "with -data, write a final snapshot during graceful shutdown")
		solveWorkers    = fs.Int("solve-workers", 0, "parallel consistency-solver fan width for /v1/reason/check (0 = reason default)")
		maxNetwork      = fs.Int("max-network", 64, "max variables a /v1/reason request may declare (oversized networks get 413)")
		replRetain      = fs.Int("repl-retain", 0, "replication records the primary retains in memory (0 = 65536); lagging followers re-bootstrap")
		follow          = fs.String("follow", "", "with -role replica: the primary's base URL to tail")
		replicaData     = fs.String("replica-data", "", "with -role replica: cache directory so a restart resumes from the last applied sequence")
		primaryURL      = fs.String("primary", "", "with -role router: the primary's base URL (writes go here)")
		replicaURLs     = fs.String("replicas", "", "with -role router: comma-separated replica base URLs (reads round-robin across healthy ones)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var handler slog.Handler
	if *jsonLogs {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	pctOn, err := parseOnOff("pct", *pct)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch *role {
	case "router":
		return runRouter(ctx, stdout, logger, *addr, *primaryURL, *replicaURLs, *shutdownTimeout)
	case "replica":
		return runReplica(ctx, stdout, logger, replicaParams{
			addr: *addr, follow: *follow, cacheDir: *replicaData,
			workers: *workers, maxBody: *maxBody, maxBulk: *maxBulk,
			requestTimeout: *requestTimeout, shutdownTimeout: *shutdownTimeout,
			solveWorkers: *solveWorkers, maxNetwork: *maxNetwork,
		})
	case "", "primary":
		// fall through to the primary path below
	default:
		return fmt.Errorf("unknown -role %q (want primary, replica or router)", *role)
	}

	var (
		tr *config.Tracked
		ps *persist.Store
	)
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsyncPolicy)
		if err != nil {
			return err
		}
		// With a data directory the durable state is the source of truth:
		// -config/-greece only seed a directory holding no snapshot yet,
		// and may be omitted entirely when one does.
		seed, err := loadConfigOptional(*configPath, *greece)
		if err != nil {
			return err
		}
		ps, err = persist.Open(*dataDir, seed, persist.Options{
			Sync:    wal.Options{Policy: policy, Interval: *fsyncInterval},
			Workers: *workers,
			Pct:     pctOn,
			Logger:  logger,
		})
		if err != nil {
			return err
		}
		defer ps.Close()
		tr = ps.Tracked()
		st := ps.Status()
		logger.Info("data dir recovered",
			"dir", st.Dir, "seq", st.Seq, "regions", st.Regions,
			"seeded", st.SeededFromSnapshot, "replayed", st.ReplayedRecords,
			"recovery_ms", st.RecoveryNs/1e6, "fsync", policy.String())
		if st.Corruption != "" {
			logger.Warn("recovered past a torn WAL tail", "at", st.Corruption)
		}
	} else {
		img, err := loadConfig(*configPath, *greece)
		if err != nil {
			return err
		}
		tr, err = config.Track(img, core.StoreOptions{Workers: *workers, Pct: pctOn})
		if err != nil {
			return fmt.Errorf("building relation store: %w", err)
		}
		logger.Info("configuration loaded",
			"name", img.Name, "regions", tr.Store().Len(), "pct", pctOn)
	}
	defer tr.Close()

	// Every primary is a replication source: edits route through the
	// Primary wrapper (which itself writes through the durable store when
	// one is open, so WAL-before-ack is preserved) and followers tail them
	// from /v1/replication/wal.
	var under replica.Editor = tr
	if ps != nil {
		under = ps
	}
	prim := replica.NewPrimary(tr, under, replica.PrimaryOptions{Retain: *replRetain, Pct: pctOn})

	srv := serve.New(tr, serve.Options{
		MaxBodyBytes:   *maxBody,
		MaxBulkBytes:   *maxBulk,
		RequestTimeout: *requestTimeout,
		Workers:        *workers,
		Logger:         logger,
		Persist:        ps,
		SolveWorkers:   *solveWorkers,
		MaxNetwork:     *maxNetwork,
		Repl:           prim,
		Editor:         prim,
		PctDisabled:    !pctOn,
	})

	if err := serveHTTP(ctx, stdout, logger, *addr, srv.Handler(), *shutdownTimeout); err != nil {
		return err
	}
	// The listener is drained: no more edits can arrive, so the final
	// snapshot captures everything that was acknowledged.
	if ps != nil && *snapOnExit {
		if info, err := ps.Snapshot(); err != nil {
			logger.Warn("final snapshot failed; the WAL still holds every edit", "err", err)
		} else {
			logger.Info("final snapshot written", "seq", info.Seq, "bytes", info.Bytes)
		}
	}
	logger.Info("bye")
	return nil
}

// replicaParams carries the replica-role flag subset.
type replicaParams struct {
	addr, follow, cacheDir   string
	workers                  int
	maxBody, maxBulk         int64
	requestTimeout           time.Duration
	shutdownTimeout          time.Duration
	solveWorkers, maxNetwork int
}

// runReplica bootstraps from the primary (or the local cache), starts the
// tail loop, and serves the read surface; writes answer 421 not_primary.
func runReplica(ctx context.Context, stdout *os.File, logger *slog.Logger, p replicaParams) error {
	if p.follow == "" {
		return fmt.Errorf("-role replica requires -follow <primary-url>")
	}
	rep, err := replica.Open(ctx, replica.Options{
		Primary:  p.follow,
		CacheDir: p.cacheDir,
		Workers:  p.workers,
		Logger:   logger,
	})
	if err != nil {
		return fmt.Errorf("bootstrapping replica: %w", err)
	}
	defer rep.Close()
	st := rep.Status()
	logger.Info("replica bootstrapped",
		"primary", p.follow, "epoch", st.Epoch, "seq", st.LastAppliedSeq,
		"generation", st.Generation, "from_cache", st.ResumedFromCache)

	tailDone := make(chan struct{})
	go func() {
		defer close(tailDone)
		if err := rep.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
			logger.Error("replication tail stopped", "err", err)
		}
	}()

	srv := serve.New(rep.Tracked(), serve.Options{
		MaxBodyBytes:   p.maxBody,
		MaxBulkBytes:   p.maxBulk,
		RequestTimeout: p.requestTimeout,
		Workers:        p.workers,
		Logger:         logger,
		SolveWorkers:   p.solveWorkers,
		MaxNetwork:     p.maxNetwork,
		Role:           "replica",
		PrimaryURL:     p.follow,
		Follower:       rep,
	})
	err = serveHTTP(ctx, stdout, logger, p.addr, srv.Handler(), p.shutdownTimeout)
	<-tailDone
	if err != nil {
		return err
	}
	logger.Info("bye")
	return nil
}

// runRouter serves the role-aware reverse proxy: writes (and replication,
// admin, debug traffic) to the primary, reads round-robined across healthy
// replicas.
func runRouter(ctx context.Context, stdout *os.File, logger *slog.Logger, addr, primary, replicas string, shutdownTimeout time.Duration) error {
	if primary == "" {
		return fmt.Errorf("-role router requires -primary <url>")
	}
	var urls []string
	for _, u := range strings.Split(replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	rtr, err := replica.NewRouter(replica.RouterOptions{
		Primary:  primary,
		Replicas: urls,
		Logger:   logger,
	})
	if err != nil {
		return err
	}
	go rtr.Run(ctx)
	logger.Info("routing", "primary", primary, "replicas", len(urls))
	if err := serveHTTP(ctx, stdout, logger, addr, rtr.Handler(), shutdownTimeout); err != nil {
		return err
	}
	logger.Info("bye")
	return nil
}

// serveHTTP binds addr, announces the resolved address on stdout, serves
// handler until ctx is cancelled (SIGINT/SIGTERM), then drains gracefully
// within shutdownTimeout. It returns only after the listener goroutine has
// fully exited.
func serveHTTP(ctx context.Context, stdout *os.File, logger *slog.Logger, addr string, handler http.Handler, shutdownTimeout time.Duration) error {
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The resolved address goes to stdout so callers of "-addr :0" (the
	// smoke test, scripts) can discover the port.
	fmt.Fprintf(stdout, "cardirectd: listening on %s\n", ln.Addr())
	logger.Info("listening", "addr", ln.Addr().String())

	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down", "drain", shutdownTimeout.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return <-errCh
}

// parseOnOff parses an on/off flag value (true/false accepted for
// compatibility with the flag's earlier boolean form).
func parseOnOff(name, v string) (bool, error) {
	switch strings.ToLower(v) {
	case "on", "true", "1", "yes":
		return true, nil
	case "off", "false", "0", "no":
		return false, nil
	}
	return false, fmt.Errorf("bad -%s value %q (want on or off)", name, v)
}

// loadConfigOptional is loadConfig for durable startup: no flags means no
// seed (nil), because the data directory itself may hold the state.
func loadConfigOptional(path string, greece bool) (*config.Image, error) {
	if path == "" && !greece {
		return nil, nil
	}
	return loadConfig(path, greece)
}

// loadConfig resolves the served document from the flags.
func loadConfig(path string, greece bool) (*config.Image, error) {
	switch {
	case greece && path != "":
		return nil, fmt.Errorf("use -config or -greece, not both")
	case greece:
		return config.Greece(), nil
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return config.Load(f)
	default:
		return nil, fmt.Errorf("no configuration: pass -config <file> or -greece")
	}
}
