package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"cardirect/internal/core"
	"cardirect/internal/geom"
)

// buildBinary compiles cardirectd once per test into a temp dir.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cardirectd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building cardirectd: %v", err)
	}
	return bin
}

// startDaemon launches the binary with args plus an ephemeral port and
// returns the process and resolved base URL (read from the stdout listen
// line).
func startDaemon(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, append(args, "-addr", "127.0.0.1:0")...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no listen line on stdout: %v", sc.Err())
	}
	line := sc.Text()
	const prefix = "cardirectd: listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected stdout line: %q", line)
	}
	return cmd, "http://" + strings.TrimPrefix(line, prefix)
}

// getJSON fetches path until the server answers, failing on non-200.
func getJSON(t *testing.T, base, path string, out any) {
	t.Helper()
	var lastErr error
	for i := 0; i < 50; i++ {
		resp, err := http.Get(base + path)
		if err != nil {
			lastErr = err
			time.Sleep(20 * time.Millisecond)
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: reading: %v", path, err)
		}
		// Unwrap the {"data": ...} response envelope.
		var env struct {
			Data json.RawMessage `json:"data"`
		}
		if err := json.Unmarshal(raw, &env); err == nil && env.Data != nil {
			raw = env.Data
		}
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("GET %s: decoding: %v", path, err)
		}
		return
	}
	t.Fatalf("GET %s never succeeded: %v", path, lastErr)
}

// TestCardirectdSmoke builds the real binary, serves the Greece fixture on
// an ephemeral port, exercises the health and relation endpoints over the
// wire, and checks that SIGTERM drains to a zero exit. This is the CI
// smoke job (make smoke).
func TestCardirectdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary smoke test in -short mode")
	}
	bin := buildBinary(t)
	cmd, base := startDaemon(t, bin, "-greece")

	var health struct {
		Status  string `json:"status"`
		Regions int    `json:"regions"`
	}
	getJSON(t, base, "/healthz", &health)
	if health.Status != "ok" || health.Regions != 11 {
		t.Fatalf("healthz = %+v", health)
	}

	var rel struct {
		Relation string `json:"relation"`
	}
	getJSON(t, base, "/v1/relation?primary=attica&reference=peloponnesos", &rel)
	if rel.Relation == "" {
		t.Fatal("empty relation")
	}

	// The legacy alias answers identically but flags its deprecation.
	resp, err := http.Get(base + "/api/relation?primary=attica&reference=peloponnesos")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy /api path missing Deprecation header")
	}

	// Graceful shutdown: SIGTERM drains to exit code 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("cardirectd exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("cardirectd did not exit within 15s of SIGTERM")
	}
}

// TestCardirectdCrashRecovery is the crash-consistency harness: a durable
// daemon takes a stream of region adds over HTTP and is SIGKILLed
// mid-stream; the restarted daemon must recover the seed plus a contiguous
// prefix of the issued adds covering every acknowledged one (-fsync always:
// acked ⇒ durable), and its served relations must equal a from-scratch
// batch computation over the recovered geometries.
func TestCardirectdCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary crash test in -short mode")
	}
	bin := buildBinary(t)
	dataDir := t.TempDir()
	cmd, base := startDaemon(t, bin, "-greece", "-data", dataDir, "-fsync", "always")

	// Wait for readiness, then stream adds while a timer pulls the plug.
	var health struct {
		Status string `json:"status"`
	}
	getJSON(t, base, "/healthz", &health)

	var acked atomic.Int64
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(300 * time.Millisecond)
		cmd.Process.Signal(syscall.SIGKILL)
		cmd.Wait()
	}()

	const maxAdds = 400
	issued := make([]string, 0, maxAdds)
	for i := 0; i < maxAdds; i++ {
		id := fmt.Sprintf("crash%03d", i)
		x := 300 + float64(i%20)*25
		y := 300 + float64(i/20)*25
		body, _ := json.Marshal(map[string]any{
			"id":  id,
			"wkt": fmt.Sprintf("POLYGON ((%g %g, %g %g, %g %g, %g %g, %g %g))", x, y, x+20, y, x+20, y+20, x, y+20, x, y),
		})
		issued = append(issued, id)
		resp, err := http.Post(base+"/api/regions", "application/json", bytes.NewReader(body))
		if err != nil {
			break // the kill landed mid-request
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code != http.StatusCreated {
			t.Fatalf("POST /api/regions %s: status %d", id, code)
		}
		acked.Add(1)
	}
	<-killed
	ackedN := int(acked.Load())
	if ackedN == 0 {
		t.Fatal("daemon died before acknowledging any edit; nothing to verify")
	}
	t.Logf("killed after %d acknowledged adds", ackedN)

	// Restart from the data directory alone: no -greece, no -config.
	_, base2 := startDaemon(t, bin, "-data", dataDir)

	var status struct {
		Seq     uint64 `json:"seq"`
		Err     string `json:"err"`
		Seeded  bool   `json:"seeded_from_snapshot"`
		Skipped int    `json:"skipped_records"`
	}
	getJSON(t, base2, "/api/admin/status", &status)
	if status.Err != "" || status.Skipped != 0 {
		t.Fatalf("recovery not clean: %+v", status)
	}
	if !status.Seeded {
		t.Error("recovery did not seed from the snapshot")
	}

	var regions struct {
		Regions []struct {
			ID string `json:"id"`
		} `json:"regions"`
	}
	getJSON(t, base2, "/api/regions", &regions)
	recovered := make(map[string]bool, len(regions.Regions))
	for _, r := range regions.Regions {
		recovered[r.ID] = true
	}

	// Invariant 1: a contiguous prefix of the issued stream survived, and
	// it covers every acknowledged edit.
	n := 0
	for _, id := range issued {
		if !recovered[id] {
			break
		}
		n++
	}
	for _, id := range issued[n:] {
		if recovered[id] {
			t.Fatalf("recovered set is not a prefix: %s survived but an earlier add did not", id)
		}
	}
	if n < ackedN {
		t.Fatalf("acknowledged edit lost: %d acked, only prefix of %d recovered", ackedN, n)
	}
	if want := 11 + n; len(recovered) != want {
		t.Fatalf("recovered %d regions, want Greece's 11 + %d adds", len(recovered), n)
	}
	t.Logf("recovered %d/%d issued adds (>= %d acked)", n, len(issued), ackedN)

	// Invariant 2 (differential): the served relations equal a from-scratch
	// batch computation over the recovered geometries.
	named := make([]core.NamedRegion, 0, len(recovered))
	for _, r := range regions.Regions {
		var detail struct {
			WKT string `json:"wkt"`
		}
		getJSON(t, base2, "/api/regions/"+r.ID, &detail)
		g, err := geom.ParseWKT(detail.WKT)
		if err != nil {
			t.Fatalf("parsing recovered geometry of %s: %v", r.ID, err)
		}
		named = append(named, core.NamedRegion{Name: r.ID, Region: g})
	}
	wantCDR, err := core.BatchCDR(t.Context(), named, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantPct, err := core.BatchPct(t.Context(), named, nil)
	if err != nil {
		t.Fatal(err)
	}

	var served struct {
		Pairs []struct {
			Primary   string             `json:"primary"`
			Reference string             `json:"reference"`
			Relation  string             `json:"relation"`
			Pct       map[string]float64 `json:"pct"`
		} `json:"pairs"`
	}
	getJSON(t, base2, "/api/relations", &served)
	if len(served.Pairs) != len(wantCDR.Pairs) {
		t.Fatalf("served %d pairs, recomputed %d", len(served.Pairs), len(wantCDR.Pairs))
	}
	for i, p := range served.Pairs {
		w := wantCDR.Pairs[i]
		if p.Primary != w.Primary || p.Reference != w.Reference || p.Relation != w.Relation.String() {
			t.Fatalf("pair %d: served %s/%s=%s, recomputed %s/%s=%s",
				i, p.Primary, p.Reference, p.Relation, w.Primary, w.Reference, w.Relation)
		}
	}

	getJSON(t, base2, "/api/relations?pct=1", &served)
	if len(served.Pairs) != len(wantPct.Pairs) {
		t.Fatalf("served %d pct pairs, recomputed %d", len(served.Pairs), len(wantPct.Pairs))
	}
	for i, p := range served.Pairs {
		w := wantPct.Pairs[i]
		if p.Primary != w.Primary || p.Reference != w.Reference {
			t.Fatalf("pct pair %d names: %s/%s vs %s/%s", i, p.Primary, p.Reference, w.Primary, w.Reference)
		}
		for _, tile := range core.Tiles() {
			got := p.Pct[tile.String()] // zero tiles are omitted on the wire
			if want := w.Matrix.Get(tile); math.Abs(got-want) > 1e-9 {
				t.Fatalf("pct pair %s/%s tile %s: served %v, recomputed %v",
					p.Primary, p.Reference, tile, got, want)
			}
		}
	}
}

// TestRunFlagErrors covers the config-resolution failure modes without
// binding a socket.
func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                              // no configuration
		{"-greece", "-config", "x.xml"}, // both sources
		{"-config", filepath.Join(t.TempDir(), "missing.xml")},
		{"-data", t.TempDir()},                                   // empty data dir needs a seed
		{"-greece", "-data", t.TempDir(), "-fsync", "sometimes"}, // bad policy
		{"-greece", "-pct", "maybe"},                             // bad on/off value
		{"-greece", "-role", "observer"},                         // unknown role
		{"-role", "replica"},                                     // replica needs -follow
		{"-role", "router"},                                      // router needs -primary
	} {
		if err := run(args, os.Stdout); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// getRaw fetches path without retries and returns status and body.
func getRaw(t *testing.T, base, path string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// TestCardirectdPctDisabled runs the daemon with -pct off: percent routes
// answer 422 pct_disabled while qualitative routes keep working.
func TestCardirectdPctDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary test in -short mode")
	}
	bin := buildBinary(t)
	_, base := startDaemon(t, bin, "-greece", "-pct", "off")

	var health struct {
		Status string `json:"status"`
	}
	getJSON(t, base, "/healthz", &health)

	for _, path := range []string{
		"/v1/relation?primary=attica&reference=peloponnesos&pct=1",
		"/v1/relations?pct=1",
	} {
		status, _, body := getRaw(t, base, path)
		if status != http.StatusUnprocessableEntity {
			t.Fatalf("GET %s with -pct off: status %d, want 422: %s", path, status, body)
		}
		var env struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != "pct_disabled" {
			t.Fatalf("GET %s: error code %q (err %v), want pct_disabled", path, env.Error.Code, err)
		}
	}
	var rel struct {
		Relation string `json:"relation"`
	}
	getJSON(t, base, "/v1/relation?primary=attica&reference=peloponnesos", &rel)
	if rel.Relation == "" {
		t.Fatal("qualitative relation broken with -pct off")
	}
}

// replStatus mirrors the /v1/replication/status payload the tests consume.
type replStatus struct {
	Role       string `json:"role"`
	Generation uint64 `json:"generation"`
	HeadSeq    uint64 `json:"head_seq"`
	Replica    *struct {
		LastAppliedSeq   uint64 `json:"last_applied_seq"`
		Generation       uint64 `json:"generation"`
		BootSeq          uint64 `json:"boot_seq"`
		ResumedFromCache bool   `json:"resumed_from_cache"`
	} `json:"replica"`
}

// addRegion posts one square region to a primary and fails on non-201.
func addRegion(t *testing.T, base, id string, x, y float64) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"id":  id,
		"wkt": fmt.Sprintf("POLYGON ((%g %g, %g %g, %g %g, %g %g, %g %g))", x, y, x+15, y, x+15, y+15, x, y+15, x, y),
	})
	resp, err := http.Post(base+"/v1/regions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/regions %s: status %d", id, resp.StatusCode)
	}
}

// TestCardirectdReplicaResume is the kill-and-resume replication scenario
// (make smoke): a tailing replica is SIGKILLed mid-stream, restarted over
// the same -replica-data directory, and must resume from its last applied
// sequence (not a fresh snapshot) and converge to the primary's generation
// with byte-identical reads.
func TestCardirectdReplicaResume(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary replication test in -short mode")
	}
	bin := buildBinary(t)
	_, primBase := startDaemon(t, bin, "-greece")
	var health struct {
		Status string `json:"status"`
	}
	getJSON(t, primBase, "/healthz", &health)

	cacheDir := t.TempDir()
	repCmd, repBase := startDaemon(t, bin, "-role", "replica", "-follow", primBase, "-replica-data", cacheDir)

	const firstBatch = 20
	for i := 0; i < firstBatch; i++ {
		addRegion(t, primBase, fmt.Sprintf("live%03d", i), 300+float64(i%5)*25, 300+float64(i/5)*25)
	}

	waitApplied := func(base string, minSeq uint64) replStatus {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			var st replStatus
			getJSON(t, base, "/v1/replication/status", &st)
			if st.Replica != nil && st.Replica.LastAppliedSeq >= minSeq {
				return st
			}
			time.Sleep(25 * time.Millisecond)
		}
		t.Fatalf("replica never reached seq %d", minSeq)
		return replStatus{}
	}
	waitApplied(repBase, firstBatch)

	// Writes to the replica bounce with the primary's address.
	resp, err := http.Post(repBase+"/v1/regions", "application/json",
		strings.NewReader(`{"id":"nope","wkt":"POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))"}`))
	if err != nil {
		t.Fatal(err)
	}
	bounced, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("replica write: status %d, want 421: %s", resp.StatusCode, bounced)
	}
	if !strings.Contains(string(bounced), "not_primary") || !strings.Contains(string(bounced), primBase) {
		t.Fatalf("replica write rejection lacks not_primary/primary URL: %s", bounced)
	}

	// Pull the plug on the replica mid-life; the primary keeps moving.
	repCmd.Process.Signal(syscall.SIGKILL)
	repCmd.Wait()
	for i := 0; i < 10; i++ {
		addRegion(t, primBase, fmt.Sprintf("down%03d", i), 600+float64(i)*20, 600)
	}

	// Restart over the same cache: it must resume, not re-snapshot.
	_, repBase2 := startDaemon(t, bin, "-role", "replica", "-follow", primBase, "-replica-data", cacheDir)
	st := waitApplied(repBase2, firstBatch+10)
	if st.Replica.BootSeq < firstBatch {
		t.Fatalf("boot seq %d: replica re-bootstrapped instead of resuming past %d", st.Replica.BootSeq, firstBatch)
	}
	if !st.Replica.ResumedFromCache {
		t.Fatal("restarted replica did not resume from its cache")
	}

	// Converged: generations equal, relations bodies and ETags identical.
	var primSt replStatus
	getJSON(t, primBase, "/v1/replication/status", &primSt)
	deadline := time.Now().Add(20 * time.Second)
	for {
		getJSON(t, repBase2, "/v1/replication/status", &st)
		if st.Replica.Generation == primSt.Generation && st.Replica.LastAppliedSeq == primSt.HeadSeq {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica at gen %d seq %d, primary at gen %d head %d",
				st.Replica.Generation, st.Replica.LastAppliedSeq, primSt.Generation, primSt.HeadSeq)
		}
		time.Sleep(25 * time.Millisecond)
	}
	pStatus, pHdr, pBody := getRaw(t, primBase, "/v1/relations")
	rStatus, rHdr, rBody := getRaw(t, repBase2, "/v1/relations")
	if pStatus != http.StatusOK || rStatus != http.StatusOK {
		t.Fatalf("relations: primary %d, replica %d", pStatus, rStatus)
	}
	if !bytes.Equal(pBody, rBody) {
		t.Fatal("resumed replica serves different /v1/relations body than the primary")
	}
	if pe, re := pHdr.Get("ETag"), rHdr.Get("ETag"); pe == "" || pe != re {
		t.Fatalf("ETags diverged: primary %q, replica %q", pe, re)
	}
}

// TestCardirectdRouter stands up all three roles and checks the router
// splits traffic: writes land on the primary, reads come from the replica.
func TestCardirectdRouter(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary router test in -short mode")
	}
	bin := buildBinary(t)
	_, primBase := startDaemon(t, bin, "-greece")
	var health struct {
		Status string `json:"status"`
	}
	getJSON(t, primBase, "/healthz", &health)
	_, repBase := startDaemon(t, bin, "-role", "replica", "-follow", primBase, "-replica-data", t.TempDir())
	_, routerBase := startDaemon(t, bin, "-role", "router", "-primary", primBase, "-replicas", repBase)

	var rtSt struct {
		Healthy int `json:"healthy_replicas"`
	}
	deadline := time.Now().Add(20 * time.Second)
	for rtSt.Healthy == 0 {
		if time.Now().After(deadline) {
			t.Fatal("router never saw a healthy replica")
		}
		getJSON(t, routerBase, "/v1/router/status", &rtSt)
		time.Sleep(25 * time.Millisecond)
	}

	addRegion(t, routerBase, "routed", 500, 500)
	deadline = time.Now().Add(20 * time.Second)
	for {
		status, hdr, _ := getRaw(t, routerBase, "/v1/relations")
		if status == http.StatusOK && hdr.Get("Cardirect-Staleness") == "" {
			t.Fatal("router read skipped the replica (no staleness header)")
		}
		var env struct {
			Data struct {
				Relation string `json:"relation"`
			} `json:"data"`
		}
		if status, _, body := getRaw(t, routerBase, "/v1/relation?primary=routed&reference=attica"); status == http.StatusOK {
			if err := json.Unmarshal(body, &env); err == nil && env.Data.Relation != "" {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("write via router never became readable via the replica")
		}
		time.Sleep(25 * time.Millisecond)
	}
}
