package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"cardirect/internal/core"
	"cardirect/internal/geom"
)

// buildBinary compiles cardirectd once per test into a temp dir.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cardirectd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building cardirectd: %v", err)
	}
	return bin
}

// startDaemon launches the binary with args plus an ephemeral port and
// returns the process and resolved base URL (read from the stdout listen
// line).
func startDaemon(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, append(args, "-addr", "127.0.0.1:0")...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no listen line on stdout: %v", sc.Err())
	}
	line := sc.Text()
	const prefix = "cardirectd: listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected stdout line: %q", line)
	}
	return cmd, "http://" + strings.TrimPrefix(line, prefix)
}

// getJSON fetches path until the server answers, failing on non-200.
func getJSON(t *testing.T, base, path string, out any) {
	t.Helper()
	var lastErr error
	for i := 0; i < 50; i++ {
		resp, err := http.Get(base + path)
		if err != nil {
			lastErr = err
			time.Sleep(20 * time.Millisecond)
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: reading: %v", path, err)
		}
		// Unwrap the {"data": ...} response envelope.
		var env struct {
			Data json.RawMessage `json:"data"`
		}
		if err := json.Unmarshal(raw, &env); err == nil && env.Data != nil {
			raw = env.Data
		}
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("GET %s: decoding: %v", path, err)
		}
		return
	}
	t.Fatalf("GET %s never succeeded: %v", path, lastErr)
}

// TestCardirectdSmoke builds the real binary, serves the Greece fixture on
// an ephemeral port, exercises the health and relation endpoints over the
// wire, and checks that SIGTERM drains to a zero exit. This is the CI
// smoke job (make smoke).
func TestCardirectdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary smoke test in -short mode")
	}
	bin := buildBinary(t)
	cmd, base := startDaemon(t, bin, "-greece")

	var health struct {
		Status  string `json:"status"`
		Regions int    `json:"regions"`
	}
	getJSON(t, base, "/healthz", &health)
	if health.Status != "ok" || health.Regions != 11 {
		t.Fatalf("healthz = %+v", health)
	}

	var rel struct {
		Relation string `json:"relation"`
	}
	getJSON(t, base, "/v1/relation?primary=attica&reference=peloponnesos", &rel)
	if rel.Relation == "" {
		t.Fatal("empty relation")
	}

	// The legacy alias answers identically but flags its deprecation.
	resp, err := http.Get(base + "/api/relation?primary=attica&reference=peloponnesos")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy /api path missing Deprecation header")
	}

	// Graceful shutdown: SIGTERM drains to exit code 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("cardirectd exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("cardirectd did not exit within 15s of SIGTERM")
	}
}

// TestCardirectdCrashRecovery is the crash-consistency harness: a durable
// daemon takes a stream of region adds over HTTP and is SIGKILLed
// mid-stream; the restarted daemon must recover the seed plus a contiguous
// prefix of the issued adds covering every acknowledged one (-fsync always:
// acked ⇒ durable), and its served relations must equal a from-scratch
// batch computation over the recovered geometries.
func TestCardirectdCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary crash test in -short mode")
	}
	bin := buildBinary(t)
	dataDir := t.TempDir()
	cmd, base := startDaemon(t, bin, "-greece", "-data", dataDir, "-fsync", "always")

	// Wait for readiness, then stream adds while a timer pulls the plug.
	var health struct {
		Status string `json:"status"`
	}
	getJSON(t, base, "/healthz", &health)

	var acked atomic.Int64
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(300 * time.Millisecond)
		cmd.Process.Signal(syscall.SIGKILL)
		cmd.Wait()
	}()

	const maxAdds = 400
	issued := make([]string, 0, maxAdds)
	for i := 0; i < maxAdds; i++ {
		id := fmt.Sprintf("crash%03d", i)
		x := 300 + float64(i%20)*25
		y := 300 + float64(i/20)*25
		body, _ := json.Marshal(map[string]any{
			"id":  id,
			"wkt": fmt.Sprintf("POLYGON ((%g %g, %g %g, %g %g, %g %g, %g %g))", x, y, x+20, y, x+20, y+20, x, y+20, x, y),
		})
		issued = append(issued, id)
		resp, err := http.Post(base+"/api/regions", "application/json", bytes.NewReader(body))
		if err != nil {
			break // the kill landed mid-request
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code != http.StatusCreated {
			t.Fatalf("POST /api/regions %s: status %d", id, code)
		}
		acked.Add(1)
	}
	<-killed
	ackedN := int(acked.Load())
	if ackedN == 0 {
		t.Fatal("daemon died before acknowledging any edit; nothing to verify")
	}
	t.Logf("killed after %d acknowledged adds", ackedN)

	// Restart from the data directory alone: no -greece, no -config.
	_, base2 := startDaemon(t, bin, "-data", dataDir)

	var status struct {
		Seq     uint64 `json:"seq"`
		Err     string `json:"err"`
		Seeded  bool   `json:"seeded_from_snapshot"`
		Skipped int    `json:"skipped_records"`
	}
	getJSON(t, base2, "/api/admin/status", &status)
	if status.Err != "" || status.Skipped != 0 {
		t.Fatalf("recovery not clean: %+v", status)
	}
	if !status.Seeded {
		t.Error("recovery did not seed from the snapshot")
	}

	var regions struct {
		Regions []struct {
			ID string `json:"id"`
		} `json:"regions"`
	}
	getJSON(t, base2, "/api/regions", &regions)
	recovered := make(map[string]bool, len(regions.Regions))
	for _, r := range regions.Regions {
		recovered[r.ID] = true
	}

	// Invariant 1: a contiguous prefix of the issued stream survived, and
	// it covers every acknowledged edit.
	n := 0
	for _, id := range issued {
		if !recovered[id] {
			break
		}
		n++
	}
	for _, id := range issued[n:] {
		if recovered[id] {
			t.Fatalf("recovered set is not a prefix: %s survived but an earlier add did not", id)
		}
	}
	if n < ackedN {
		t.Fatalf("acknowledged edit lost: %d acked, only prefix of %d recovered", ackedN, n)
	}
	if want := 11 + n; len(recovered) != want {
		t.Fatalf("recovered %d regions, want Greece's 11 + %d adds", len(recovered), n)
	}
	t.Logf("recovered %d/%d issued adds (>= %d acked)", n, len(issued), ackedN)

	// Invariant 2 (differential): the served relations equal a from-scratch
	// batch computation over the recovered geometries.
	named := make([]core.NamedRegion, 0, len(recovered))
	for _, r := range regions.Regions {
		var detail struct {
			WKT string `json:"wkt"`
		}
		getJSON(t, base2, "/api/regions/"+r.ID, &detail)
		g, err := geom.ParseWKT(detail.WKT)
		if err != nil {
			t.Fatalf("parsing recovered geometry of %s: %v", r.ID, err)
		}
		named = append(named, core.NamedRegion{Name: r.ID, Region: g})
	}
	wantCDR, err := core.BatchCDR(t.Context(), named, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantPct, err := core.BatchPct(t.Context(), named, nil)
	if err != nil {
		t.Fatal(err)
	}

	var served struct {
		Pairs []struct {
			Primary   string             `json:"primary"`
			Reference string             `json:"reference"`
			Relation  string             `json:"relation"`
			Pct       map[string]float64 `json:"pct"`
		} `json:"pairs"`
	}
	getJSON(t, base2, "/api/relations", &served)
	if len(served.Pairs) != len(wantCDR.Pairs) {
		t.Fatalf("served %d pairs, recomputed %d", len(served.Pairs), len(wantCDR.Pairs))
	}
	for i, p := range served.Pairs {
		w := wantCDR.Pairs[i]
		if p.Primary != w.Primary || p.Reference != w.Reference || p.Relation != w.Relation.String() {
			t.Fatalf("pair %d: served %s/%s=%s, recomputed %s/%s=%s",
				i, p.Primary, p.Reference, p.Relation, w.Primary, w.Reference, w.Relation)
		}
	}

	getJSON(t, base2, "/api/relations?pct=1", &served)
	if len(served.Pairs) != len(wantPct.Pairs) {
		t.Fatalf("served %d pct pairs, recomputed %d", len(served.Pairs), len(wantPct.Pairs))
	}
	for i, p := range served.Pairs {
		w := wantPct.Pairs[i]
		if p.Primary != w.Primary || p.Reference != w.Reference {
			t.Fatalf("pct pair %d names: %s/%s vs %s/%s", i, p.Primary, p.Reference, w.Primary, w.Reference)
		}
		for _, tile := range core.Tiles() {
			got := p.Pct[tile.String()] // zero tiles are omitted on the wire
			if want := w.Matrix.Get(tile); math.Abs(got-want) > 1e-9 {
				t.Fatalf("pct pair %s/%s tile %s: served %v, recomputed %v",
					p.Primary, p.Reference, tile, got, want)
			}
		}
	}
}

// TestRunFlagErrors covers the config-resolution failure modes without
// binding a socket.
func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                              // no configuration
		{"-greece", "-config", "x.xml"}, // both sources
		{"-config", filepath.Join(t.TempDir(), "missing.xml")},
		{"-data", t.TempDir()},                                   // empty data dir needs a seed
		{"-greece", "-data", t.TempDir(), "-fsync", "sometimes"}, // bad policy
	} {
		if err := run(args, os.Stdout); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
