package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestCardirectdSmoke builds the real binary, serves the Greece fixture on
// an ephemeral port, exercises the health and relation endpoints over the
// wire, and checks that SIGTERM drains to a zero exit. This is the CI
// smoke job (make smoke).
func TestCardirectdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary smoke test in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "cardirectd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building cardirectd: %v", err)
	}

	cmd := exec.Command(bin, "-greece", "-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first stdout line announces the resolved address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no listen line on stdout: %v", sc.Err())
	}
	line := sc.Text()
	const prefix = "cardirectd: listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected stdout line: %q", line)
	}
	base := "http://" + strings.TrimPrefix(line, prefix)

	getJSON := func(path string, out any) {
		t.Helper()
		var lastErr error
		for i := 0; i < 50; i++ {
			resp, err := http.Get(base + path)
			if err != nil {
				lastErr = err
				time.Sleep(20 * time.Millisecond)
				continue
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: status %d", path, resp.StatusCode)
			}
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("GET %s: decoding: %v", path, err)
			}
			return
		}
		t.Fatalf("GET %s never succeeded: %v", path, lastErr)
	}

	var health struct {
		Status  string `json:"status"`
		Regions int    `json:"regions"`
	}
	getJSON("/healthz", &health)
	if health.Status != "ok" || health.Regions != 11 {
		t.Fatalf("healthz = %+v", health)
	}

	var rel struct {
		Relation string `json:"relation"`
	}
	getJSON("/api/relation?primary=attica&reference=peloponnesos", &rel)
	if rel.Relation == "" {
		t.Fatal("empty relation")
	}

	// Graceful shutdown: SIGTERM drains to exit code 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("cardirectd exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("cardirectd did not exit within 15s of SIGTERM")
	}
}

// TestRunFlagErrors covers the config-resolution failure modes without
// binding a socket.
func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                              // no configuration
		{"-greece", "-config", "x.xml"}, // both sources
		{"-config", filepath.Join(t.TempDir(), "missing.xml")},
	} {
		if err := run(args, os.Stdout); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

