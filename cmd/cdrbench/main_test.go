package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"cardirect/internal/experiments"
)

func TestOnlySelectsOneExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "E9"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "== E9:") {
		t.Errorf("missing E9 header: %q", s)
	}
	if strings.Contains(s, "== E10:") || strings.Contains(s, "== E1-E3:") {
		t.Error("-only ran other experiments")
	}
	if !strings.Contains(s, "B:S:SW:W") {
		t.Error("E9 body missing the Fig. 12 relation")
	}
}

func TestOnlyCaseInsensitive(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "e1-e3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig3c triangle") {
		t.Errorf("E1-E3 body missing: %q", out.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "E99"}, &out); err == nil {
		t.Error("unknown experiment id should fail")
	}
}

func TestBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Error("bad flag should fail")
	}
}

func TestJSONFlagWritesMetrics(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	// Direct serialisation of a metrics-bearing report.
	r := experiments.Report{
		ID:      "E99-test",
		Title:   "fixture",
		Metrics: map[string]float64{"ns_per_op": 12.5, "allocs_per_op": 0},
	}
	if err := writeBenchJSON(r); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile("BENCH_E99-test.json")
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		ID      string             `json:"id"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if got.ID != "E99-test" || got.Metrics["ns_per_op"] != 12.5 {
		t.Errorf("roundtrip mismatch: %+v", got)
	}

	// A metrics-free experiment with -json writes no file.
	var out bytes.Buffer
	if err := run([]string{"-json", "-only", "E9"}, &out); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "BENCH_E99-test.json" {
			t.Errorf("unexpected file %q", e.Name())
		}
	}
}
