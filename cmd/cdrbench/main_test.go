package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestOnlySelectsOneExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "E9"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "== E9:") {
		t.Errorf("missing E9 header: %q", s)
	}
	if strings.Contains(s, "== E10:") || strings.Contains(s, "== E1-E3:") {
		t.Error("-only ran other experiments")
	}
	if !strings.Contains(s, "B:S:SW:W") {
		t.Error("E9 body missing the Fig. 12 relation")
	}
}

func TestOnlyCaseInsensitive(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "e1-e3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig3c triangle") {
		t.Errorf("E1-E3 body missing: %q", out.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "E99"}, &out); err == nil {
		t.Error("unknown experiment id should fail")
	}
}

func TestBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Error("bad flag should fail")
	}
}
