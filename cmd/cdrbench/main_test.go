package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"cardirect/internal/experiments"
)

func TestOnlySelectsOneExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "E9"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "== E9:") {
		t.Errorf("missing E9 header: %q", s)
	}
	if strings.Contains(s, "== E10:") || strings.Contains(s, "== E1-E3:") {
		t.Error("-only ran other experiments")
	}
	if !strings.Contains(s, "B:S:SW:W") {
		t.Error("E9 body missing the Fig. 12 relation")
	}
}

func TestOnlyCaseInsensitive(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "e1-e3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig3c triangle") {
		t.Errorf("E1-E3 body missing: %q", out.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "E99"}, &out); err == nil {
		t.Error("unknown experiment id should fail")
	}
}

func TestBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Error("bad flag should fail")
	}
}

func TestJSONFlagWritesMetrics(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	// Direct serialisation of a metrics-bearing report. Quick runs get a
	// _quick filename suffix and the output directory is created.
	r := experiments.Report{
		ID:      "E99-test",
		Title:   "fixture",
		Metrics: map[string]float64{"ns_per_op": 12.5, "allocs_per_op": 0},
	}
	if err := writeBenchJSON("out", r, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile("out/BENCH_E99-test_quick.json")
	if err != nil {
		t.Fatal(err)
	}
	var got benchFile
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if got.ID != "E99-test" || got.Metrics["ns_per_op"] != 12.5 {
		t.Errorf("roundtrip mismatch: %+v", got)
	}
	// The run environment is stamped alongside the metrics.
	if !got.Quick || got.GoVersion == "" || got.GOMAXPROCS < 1 ||
		got.GOOS == "" || got.GOARCH == "" || got.Revision == "" {
		t.Errorf("environment stamp incomplete: %+v", got)
	}

	// A metrics-free experiment with -json writes no file (not even the
	// default -out directory).
	var out bytes.Buffer
	if err := run([]string{"-json", "-only", "E9"}, &out); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "out" {
			t.Errorf("unexpected file %q", e.Name())
		}
	}
}

// TestCompareMetrics covers the regression gate's classification rules:
// timing keys fail upward, speedup keys fail downward, both pass within
// the threshold, vanished metrics are flagged, and quick/full baselines
// cannot be compared across modes.
func TestCompareMetrics(t *testing.T) {
	base := &benchFile{
		ID: "E21", Quick: true, Revision: "abc",
		Metrics: map[string]float64{
			"batch_pct_ms":       10,
			"pct_kernel_speedup": 2.0,
			"n":                  500, // unitless: informational only
		},
	}
	report := func(ms, speedup float64) experiments.Report {
		return experiments.Report{ID: "E21", Metrics: map[string]float64{
			"batch_pct_ms": ms, "pct_kernel_speedup": speedup, "n": 9999,
		}}
	}
	var out bytes.Buffer

	got, err := compareMetrics(&out, report(11, 1.9), base, true, 0.15)
	if err != nil || len(got) != 0 {
		t.Errorf("within-threshold run flagged: %v, %v", got, err)
	}
	got, err = compareMetrics(&out, report(12, 2.0), base, true, 0.15)
	if err != nil || len(got) != 1 || !strings.Contains(got[0], "batch_pct_ms") {
		t.Errorf("timing regression not caught: %v, %v", got, err)
	}
	got, err = compareMetrics(&out, report(10, 1.5), base, true, 0.15)
	if err != nil || len(got) != 1 || !strings.Contains(got[0], "pct_kernel_speedup") {
		t.Errorf("speedup regression not caught: %v, %v", got, err)
	}
	if _, err := compareMetrics(&out, report(10, 2), base, false, 0.15); err == nil {
		t.Error("quick baseline compared against full run without error")
	}
	missing := experiments.Report{ID: "E21", Metrics: map[string]float64{"batch_pct_ms": 10}}
	got, err = compareMetrics(&out, missing, base, true, 0.15)
	if err != nil || len(got) != 1 || !strings.Contains(got[0], "disappeared") {
		t.Errorf("vanished metric not flagged: %v, %v", got, err)
	}
}
