// Command cdrbench runs the reproduction's experiment suite (DESIGN.md §3)
// and prints one paper-shaped table or summary per experiment:
//
//	E1–E3  edge inflation (paper Fig. 3b, Fig. 3c, Example 3)
//	E4–E5  linear scaling of Compute-CDR and Compute-CDR% (Theorems 1–2)
//	E6–E7  Compute-CDR(%) vs polygon-clipping baselines (§5 future work #1)
//	E8     single pass vs nine passes (instrumented)
//	E9     the Peloponnesian-war configuration (Fig. 11/12)
//	E10–E12 inverse, composition, network consistency (the "handling" side)
//	E13    the §4 example query
//	E14    expressiveness vs point/MBB approximations
//	E15    intersection-computation counts
//	E16    R-tree-accelerated directional selection (extension)
//	E17    directions + topology + distance (future work #2)
//	E18    all-pairs batch engine: sequential vs MBB-pruned vs parallel
//	E19    zero-allocation percent batch × R-tree query pruning
//	E20    incremental relation store: single-edit delta vs full recompute
//
// Usage:
//
//	cdrbench [-quick] [-seed N] [-only E9] [-json]
//
// With -json, each experiment that reports machine-readable metrics also
// writes them to BENCH_<id>.json in the current directory (ns/op, allocs/op,
// prune rates), for CI trend tracking.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cardirect/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cdrbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cdrbench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "smaller workloads, faster run")
	seed := fs.Int64("seed", 20040314, "workload seed")
	only := fs.String("only", "", "run a single experiment id (e.g. E9 or E4-E5)")
	jsonOut := fs.Bool("json", false, "write BENCH_<id>.json per experiment with metrics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := experiments.Options{Quick: *quick, Seed: *seed}
	matched := false
	for _, e := range experiments.Entries(o) {
		if *only != "" && !strings.EqualFold(e.ID, *only) {
			continue
		}
		matched = true
		r, err := e.Run()
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		fmt.Fprintf(stdout, "== %s: %s ==\n%s\n", r.ID, r.Title, r.Body)
		if *jsonOut && len(r.Metrics) > 0 {
			if err := writeBenchJSON(r); err != nil {
				return fmt.Errorf("experiment %s: %w", e.ID, err)
			}
		}
	}
	if *only != "" && !matched {
		return fmt.Errorf("unknown experiment %q (known: %s)", *only, strings.Join(experiments.IDs(), ", "))
	}
	return nil
}

// writeBenchJSON serialises one experiment's metrics to BENCH_<id>.json.
// The id is sanitised for the filesystem (E1-E3 → BENCH_E1-E3.json is fine;
// anything stranger degrades to underscores).
func writeBenchJSON(r experiments.Report) error {
	id := strings.Map(func(c rune) rune {
		switch {
		case c >= 'A' && c <= 'Z', c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
			return c
		}
		return '_'
	}, r.ID)
	payload := struct {
		ID      string             `json:"id"`
		Title   string             `json:"title"`
		Metrics map[string]float64 `json:"metrics"`
	}{ID: r.ID, Title: r.Title, Metrics: r.Metrics}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_"+id+".json", append(data, '\n'), 0o644)
}
