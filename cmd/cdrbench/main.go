// Command cdrbench runs the reproduction's experiment suite (DESIGN.md §3)
// and prints one paper-shaped table or summary per experiment:
//
//	E1–E3  edge inflation (paper Fig. 3b, Fig. 3c, Example 3)
//	E4–E5  linear scaling of Compute-CDR and Compute-CDR% (Theorems 1–2)
//	E6–E7  Compute-CDR(%) vs polygon-clipping baselines (§5 future work #1)
//	E8     single pass vs nine passes (instrumented)
//	E9     the Peloponnesian-war configuration (Fig. 11/12)
//	E10–E12 inverse, composition, network consistency (the "handling" side)
//	E13    the §4 example query
//	E14    expressiveness vs point/MBB approximations
//	E15    intersection-computation counts
//	E16    R-tree-accelerated directional selection (extension)
//	E17    directions + topology + distance (future work #2)
//	E18    all-pairs batch engine: sequential vs MBB-pruned vs parallel
//	E19    zero-allocation percent batch × R-tree query pruning
//	E20    incremental relation store: single-edit delta vs full recompute
//	E21    raw-speed suite: SoA kernel, binary recovery, HTTP tail latency
//	E22    cost-based query planner vs written order; plan cache warm vs cold
//	E23    huge-world tier: LoD stack vs exact-only; streamed bulk ingest
//	E24    reasoning pipeline: parallel solver, fragment fast path, joint RCC-8
//	E25    replication: WAL catch-up vs rebuild, router fan-out, bounded staleness
//
// Usage:
//
//	cdrbench [-quick] [-seed N] [-only E9] [-json] [-out DIR] [-compare BASELINE.json] [-threshold 0.15]
//
// With -json, each experiment that reports machine-readable metrics also
// writes them to BENCH_<id>.json — BENCH_<id>_quick.json for -quick runs —
// under -out (default baselines/, the committed-baseline directory; "." for
// the old scatter-into-cwd behaviour). Each file carries the metrics
// (ns/op, allocs/op, prune rates) stamped with the run environment (Go
// version, GOMAXPROCS, GOOS/GOARCH, VCS revision) for CI trend tracking.
//
// With -compare, each experiment's metrics are additionally checked against
// the named baseline JSON: timing metrics (keys ending in _ns, _us or _ms)
// may not regress by more than the threshold fraction, and speedup metrics
// (keys ending in _speedup) may not shrink by more than it. Any violation
// makes the run exit nonzero — the `make bench-trend` regression gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"

	"cardirect/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cdrbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cdrbench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "smaller workloads, faster run")
	seed := fs.Int64("seed", 20040314, "workload seed")
	only := fs.String("only", "", "run a single experiment id (e.g. E9 or E4-E5)")
	jsonOut := fs.Bool("json", false, "write BENCH_<id>.json per experiment with metrics")
	outDir := fs.String("out", "baselines", "directory for -json output files")
	compare := fs.String("compare", "", "baseline BENCH_<id>.json to check metrics against")
	threshold := fs.Float64("threshold", 0.15, "allowed fractional regression vs -compare baseline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var baseline *benchFile
	if *compare != "" {
		b, err := readBenchJSON(*compare)
		if err != nil {
			return fmt.Errorf("reading baseline: %w", err)
		}
		baseline = b
	}
	o := experiments.Options{Quick: *quick, Seed: *seed}
	matched := false
	compared := false
	var regressions []string
	for _, e := range experiments.Entries(o) {
		if *only != "" && !strings.EqualFold(e.ID, *only) {
			continue
		}
		matched = true
		r, err := e.Run()
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		fmt.Fprintf(stdout, "== %s: %s ==\n%s\n", r.ID, r.Title, r.Body)
		if *jsonOut && len(r.Metrics) > 0 {
			if err := writeBenchJSON(*outDir, r, *quick); err != nil {
				return fmt.Errorf("experiment %s: %w", e.ID, err)
			}
		}
		if baseline != nil && baseline.ID == r.ID {
			compared = true
			found, err := compareMetrics(stdout, r, baseline, *quick, *threshold)
			if err != nil {
				return fmt.Errorf("experiment %s: %w", e.ID, err)
			}
			regressions = append(regressions, found...)
		}
	}
	if *only != "" && !matched {
		return fmt.Errorf("unknown experiment %q (known: %s)", *only, strings.Join(experiments.IDs(), ", "))
	}
	if baseline != nil && !compared {
		return fmt.Errorf("baseline is for %s, which this invocation did not run", baseline.ID)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d metric(s) regressed beyond %.0f%%:\n  %s",
			len(regressions), *threshold*100, strings.Join(regressions, "\n  "))
	}
	return nil
}

// benchFile is the BENCH_<id>.json schema: the experiment's metrics plus
// the environment they were measured in.
type benchFile struct {
	ID         string             `json:"id"`
	Title      string             `json:"title"`
	Quick      bool               `json:"quick"`
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	Revision   string             `json:"revision"`
	Metrics    map[string]float64 `json:"metrics"`
}

// writeBenchJSON serialises one experiment's metrics to
// dir/BENCH_<id>.json (BENCH_<id>_quick.json for quick runs, so full and
// quick baselines coexist). The id is sanitised for the filesystem
// (E1-E3 → BENCH_E1-E3.json is fine; anything stranger degrades to
// underscores); the directory is created if missing.
func writeBenchJSON(dir string, r experiments.Report, quick bool) error {
	id := strings.Map(func(c rune) rune {
		switch {
		case c >= 'A' && c <= 'Z', c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
			return c
		}
		return '_'
	}, r.ID)
	payload := benchFile{
		ID:         r.ID,
		Title:      r.Title,
		Quick:      quick,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Revision:   vcsRevision(),
		Metrics:    r.Metrics,
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	name := "BENCH_" + id + ".json"
	if quick {
		name = "BENCH_" + id + "_quick.json"
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), append(data, '\n'), 0o644)
}

func readBenchJSON(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b benchFile
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.ID == "" || b.Metrics == nil {
		return nil, fmt.Errorf("%s: not a cdrbench baseline (no id or metrics)", path)
	}
	return &b, nil
}

// vcsRevision reports the source revision: the vcs.revision build setting
// when the binary carries one (module-aware builds do), `git rev-parse`
// when run inside a checkout, "unknown" otherwise.
func vcsRevision() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			return rev
		}
	}
	return "unknown"
}

// compareMetrics checks a run's metrics against a baseline and returns the
// regressions found. Timing keys (suffix _ns, _us, _ms) regress when they
// grow past baseline*(1+threshold); speedup keys (suffix _speedup) regress
// when they shrink below baseline*(1-threshold). Other keys (counts, sizes,
// percentiles without a unit suffix) are informational. Comparing runs of
// different modes (quick vs full) is an error, not a silently meaningless
// diff.
func compareMetrics(stdout io.Writer, r experiments.Report, base *benchFile, quick bool, threshold float64) ([]string, error) {
	if base.Quick != quick {
		return nil, fmt.Errorf("baseline was recorded in %s mode but this run is %s: re-record the baseline or match the mode",
			mode(base.Quick), mode(quick))
	}
	keys := make([]string, 0, len(base.Metrics))
	for k := range base.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var regressions []string
	for _, k := range keys {
		timing := hasSuffixAny(k, "_ns", "_us", "_ms")
		speedup := strings.HasSuffix(k, "_speedup")
		if !timing && !speedup {
			continue // informational metric (counts, sizes): not gated
		}
		baseVal := base.Metrics[k]
		cur, ok := r.Metrics[k]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: metric disappeared from the run (baseline %.3f)", k, baseVal))
			continue
		}
		switch {
		case timing:
			if baseVal > 0 && cur > baseVal*(1+threshold) {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %.3f vs baseline %.3f (+%.1f%%, limit +%.0f%%)",
					k, cur, baseVal, (cur/baseVal-1)*100, threshold*100))
			}
		case speedup:
			if baseVal > 0 && cur < baseVal*(1-threshold) {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %.2fx vs baseline %.2fx (-%.1f%%, limit -%.0f%%)",
					k, cur, baseVal, (1-cur/baseVal)*100, threshold*100))
			}
		}
	}
	if len(regressions) == 0 {
		fmt.Fprintf(stdout, "-- %s: within %.0f%% of baseline %s (%s) --\n",
			r.ID, threshold*100, base.Revision, mode(base.Quick))
	}
	return regressions, nil
}

func mode(quick bool) string {
	if quick {
		return "quick"
	}
	return "full"
}

func hasSuffixAny(s string, suffixes ...string) bool {
	for _, suf := range suffixes {
		if strings.HasSuffix(s, suf) {
			return true
		}
	}
	return false
}
