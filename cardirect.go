// Package cardirect is a Go implementation of "Computing and Handling
// Cardinal Direction Information" (Skiadopoulos, Giannoukos, Vassiliadis,
// Sellis, Koubarakis — EDBT 2004): the cardinal direction relation model
// for composite regions (REG*), the paper's two linear-time computation
// algorithms, the reasoning operations built on the model (inverse,
// composition, consistency of constraint networks), polygon-clipping and
// point/MBB-approximation baselines, and the CARDIRECT tool's XML
// configuration store and query language.
//
// # Quick start
//
//	a := cardirect.BoxRegion(12, 2, 14, 10)   // primary region
//	b := cardirect.BoxRegion(0, 0, 10, 6)     // reference region
//	rel, _ := cardirect.ComputeCDR(a, b)      // NE:E
//	m, _, _ := cardirect.ComputeCDRPct(a, b)  // 50% NE, 50% E
//
// The package is a façade: the implementation lives in the internal
// packages (geom, core, clip, baseline, reason, config, query, index,
// topo, workload), re-exported here as a single stable API surface.
package cardirect

import (
	"io"

	"cardirect/internal/baseline"
	"cardirect/internal/clip"
	"cardirect/internal/config"
	"cardirect/internal/core"
	"cardirect/internal/geom"
	"cardirect/internal/index"
	"cardirect/internal/persist"
	"cardirect/internal/query"
	"cardirect/internal/reason"
	"cardirect/internal/topo"
	"cardirect/internal/wal"
	"cardirect/internal/workload"
)

// Geometry types (planar substrate).
type (
	// Point is a location in the plane.
	Point = geom.Point
	// Polygon is a simple polygon as a clockwise vertex ring.
	Polygon = geom.Polygon
	// Region is a REG* region: a set of simple polygons, possibly
	// disconnected, possibly encoding holes via shared boundaries.
	Region = geom.Region
	// Rect is an axis-aligned rectangle (minimum bounding boxes).
	Rect = geom.Rect
	// Segment is a directed edge.
	Segment = geom.Segment
)

// Geometry constructors.
var (
	// Pt builds a Point.
	Pt = geom.Pt
	// Poly builds a Polygon from vertices.
	Poly = geom.Poly
	// Rgn builds a Region from polygons.
	Rgn = geom.Rgn
	// Box builds an axis-aligned rectangle polygon.
	Box = workload.Box
	// BoxRegion builds a single-rectangle region.
	BoxRegion = workload.BoxRegion
)

// Relation model types.
type (
	// Tile identifies one of the nine tiles (B, S, SW, W, NW, N, NE, E, SE).
	Tile = core.Tile
	// Relation is a basic cardinal direction relation — a non-empty tile set.
	Relation = core.Relation
	// RelationSet is a set of basic relations (disjunctive information).
	RelationSet = core.RelationSet
	// PercentMatrix is a direction relation matrix with percentages.
	PercentMatrix = core.PercentMatrix
	// TileAreas holds per-tile absolute areas.
	TileAreas = core.TileAreas
	// Stats instruments one algorithm run (edge counts, passes).
	Stats = core.Stats
	// Grid is the nine-tile partition induced by a reference bounding box.
	Grid = core.Grid
)

// Tile constants re-exported in canonical order.
const (
	TileB  = core.TileB
	TileS  = core.TileS
	TileSW = core.TileSW
	TileW  = core.TileW
	TileNW = core.TileNW
	TileN  = core.TileN
	TileNE = core.TileNE
	TileE  = core.TileE
	TileSE = core.TileSE
)

// Single-tile relation constants.
const (
	B  = core.B
	S  = core.S
	SW = core.SW
	W  = core.W
	NW = core.NW
	N  = core.N
	NE = core.NE
	E  = core.E
	SE = core.SE
)

// Relation model functions.
var (
	// Rel builds a relation from tiles.
	Rel = core.Rel
	// ParseRelation parses "B:S:SW"-style notation.
	ParseRelation = core.ParseRelation
	// ParseRelationSet parses "{N, NW:N}"-style notation.
	ParseRelationSet = core.ParseRelationSet
	// NewRelationSet builds a relation set from members.
	NewRelationSet = core.NewRelationSet
	// AllRelations lists the 511 basic relations of D*.
	AllRelations = core.AllRelations
	// UniverseSet is the set of all basic relations.
	UniverseSet = core.Universe
	// NewGrid builds the tile grid of a reference bounding box.
	NewGrid = core.NewGrid
)

// The paper's algorithms (§3).
var (
	// ComputeCDR is Algorithm Compute-CDR: the qualitative cardinal
	// direction relation between two REG* regions, in a single pass over
	// the primary region's edges.
	ComputeCDR = core.ComputeCDR
	// ComputeCDRStats is ComputeCDR with instrumentation.
	ComputeCDRStats = core.ComputeCDRStats
	// ComputeCDRPct is Algorithm Compute-CDR%: the cardinal direction
	// relation with percentages.
	ComputeCDRPct = core.ComputeCDRPct
	// ComputeCDRPctStats is ComputeCDRPct with instrumentation.
	ComputeCDRPctStats = core.ComputeCDRPctStats
)

// Polygon-clipping baselines (§3's comparison method).
var (
	// ClipComputeCDR computes the relation by clipping the primary region
	// against all nine tiles (nine passes).
	ClipComputeCDR = clip.ComputeCDR
	// ClipComputeCDRStats is ClipComputeCDR with instrumentation.
	ClipComputeCDRStats = clip.ComputeCDRStats
	// ClipComputeCDRPct computes percentages by clip-then-measure.
	ClipComputeCDRPct = clip.ComputeCDRPct
	// ClipComputeCDRPctStats is ClipComputeCDRPct with instrumentation.
	ClipComputeCDRPctStats = clip.ComputeCDRPctStats
	// LiangBarsky clips a segment against a rectangle (possibly unbounded).
	LiangBarsky = clip.LiangBarsky
)

// Approximate prior-art models (§1–§2 positioning).
type (
	// Direction is a cone direction of the centroid-based models.
	Direction = baseline.Direction
	// Agreement grades a coarse model against the exact relation.
	Agreement = baseline.Agreement
)

var (
	// CentroidCone is the Frank-style cone direction between centroids.
	CentroidCone = baseline.CentroidCone
	// MBBRelation is the bounding-box-only relation.
	MBBRelation = baseline.MBB
	// PeuquetDirection resolves direction Peuquet & Ci-Xiang-style.
	PeuquetDirection = baseline.PeuquetDirection
	// CompareMBB grades an MBB answer against the exact relation.
	CompareMBB = baseline.CompareMBB
	// CompareCone grades a cone answer against the exact relation.
	CompareCone = baseline.CompareCone
)

// Reasoning operations ("handling", §2 and the paper's refs [20–22]).
type (
	// Network is a cardinal direction constraint network.
	Network = reason.Network
	// Witness realises a consistent network as concrete regions.
	Witness = reason.Witness
	// SolveOptions bounds the consistency search.
	SolveOptions = reason.SolveOptions
	// CheckOptions configures the staged consistency pipeline Check.
	CheckOptions = reason.CheckOptions
	// CheckResult is Check's outcome: satisfiability, witness, stage stats.
	CheckResult = reason.CheckResult
	// CheckStats reports what each stage of the consistency pipeline did.
	CheckStats = reason.CheckStats
	// TopoConstraint is one RCC-8 constraint checked jointly with the
	// directional network.
	TopoConstraint = reason.TopoConstraint
	// RCC8Set is a set of RCC-8 base relations (disjunctive topology).
	RCC8Set = topo.RCC8Set
	// RCC8Net is an RCC-8 constraint network with path-consistency
	// propagation.
	RCC8Net = topo.RCC8Net
)

var (
	// Inverse computes inv(R) — the possible relations of b w.r.t. a
	// given a R b.
	Inverse = reason.Inverse
	// InverseSet lifts Inverse to disjunctive relations.
	InverseSet = reason.InverseSet
	// MutuallyInverse tests joint realisability of (R1, R2).
	MutuallyInverse = reason.MutuallyInverse
	// Composition computes the sound composition of two relations.
	Composition = reason.Composition
	// CompositionSets lifts Composition to disjunctive relations.
	CompositionSets = reason.CompositionSets
	// NewNetwork creates an empty constraint network.
	NewNetwork = reason.NewNetwork
	// ErrSearchLimit reports an exhausted scenario budget; matched with
	// errors.Is.
	ErrSearchLimit = reason.ErrSearchLimit
	// ErrInconsistent reports a certainly-inconsistent network (returned by
	// Entail); matched with errors.Is.
	ErrInconsistent = reason.ErrInconsistent
	// ParseRCC8Set parses "TPP|NTPP"-style RCC-8 set notation ("*" = all).
	ParseRCC8Set = topo.ParseRCC8Set
	// RCC8Of builds an RCC8Set from base relations.
	RCC8Of = topo.RCC8Of
	// ComposeRCC8 is the RCC-8 composition table lookup.
	ComposeRCC8 = topo.ComposeRCC8
	// ComposeRCC8Sets lifts ComposeRCC8 to disjunctive sets.
	ComposeRCC8Sets = topo.ComposeRCC8Sets
	// NewRCC8Net creates an RCC-8 constraint network.
	NewRCC8Net = topo.NewRCC8Net
)

// RCC8All is the universal RCC-8 relation set.
const RCC8All = topo.RCC8All

// CARDIRECT configuration store (§4).
type (
	// Image is a CARDIRECT configuration document.
	Image = config.Image
	// ConfigRegion is a named, coloured region of a configuration.
	ConfigRegion = config.Region
	// ConfigRelation is a materialised relation entry.
	ConfigRelation = config.Relation
)

var (
	// LoadImage parses a CARDIRECT XML document from a reader.
	LoadImage = config.Load
	// ParseImage parses a CARDIRECT XML document from bytes.
	ParseImage = config.Parse
	// Greece is the paper's Fig. 11 Peloponnesian-war configuration.
	Greece = config.Greece
	// ParsePct decodes a pct attribute into a PercentMatrix.
	ParsePct = config.ParsePct
)

// Query language (§4).
type (
	// Query is a parsed conjunctive query.
	Query = query.Query
	// Binding is one query answer (variable → region id).
	Binding = query.Binding
	// Evaluator answers queries over a configuration.
	Evaluator = query.Evaluator
	// PreparedQuery is a parse-once/plan-once statement with $-parameters.
	PreparedQuery = query.PreparedQuery
	// QueryResult is a planned evaluation's full outcome: bindings plus the
	// executed plan, cache outcome and store generation.
	QueryResult = query.Result
	// PlanInfo describes an executed query plan: join order, condition
	// schedule, pushed-down conditions and candidate-set sizes.
	PlanInfo = query.PlanInfo
	// PlanCache is an LRU cache of query plans keyed by query text,
	// invalidated by the store's edit generation.
	PlanCache = query.PlanCache
	// PlanCacheStats counts plan cache hits, misses and replans.
	PlanCacheStats = query.PlanCacheStats
)

var (
	// ParseQuery parses the concrete query syntax.
	ParseQuery = query.Parse
	// NewEvaluator prepares a query evaluator for a configuration.
	NewEvaluator = query.NewEvaluator
	// NewPlanCache returns an LRU plan cache to share across evaluators.
	NewPlanCache = query.NewPlanCache
)

// Workload generation (experiments and examples).
type (
	// Generator produces deterministic synthetic regions.
	Generator = workload.Generator
	// WorkloadPair is a primary/reference region pair.
	WorkloadPair = workload.Pair
)

// NewGenerator returns a seeded workload generator.
var NewGenerator = workload.New

// SaveImage writes a configuration as XML.
func SaveImage(img *Image, w io.Writer) error { return img.Save(w) }

// Streaming and batch computation (beyond-paper conveniences that preserve
// the algorithms' single-pass structure).
type (
	// Accumulator streams primary-region edges through Compute-CDR(%).
	Accumulator = core.Accumulator
	// NamedRegion pairs a region with an identifier for batch APIs.
	NamedRegion = core.NamedRegion
	// PairRelation is one batch result entry.
	PairRelation = core.PairRelation
	// PairPercent is one quantitative batch result entry: the percent
	// matrix and per-tile areas of one ordered pair.
	PairPercent = core.PairPercent
	// Prepared is a region preprocessed for repeated relation computation:
	// clockwise-normalised, edges flattened, bounding box and tile grid
	// precomputed. Immutable after Prepare; safe for concurrent use.
	Prepared = core.Prepared
	// Scratch holds reusable per-goroutine buffers for Relate.
	Scratch = core.Scratch
	// BatchOptions tunes the all-pairs batch engines (worker count,
	// disabling the MBB prune fast path, pre-prepared regions).
	BatchOptions = core.BatchOptions
	// BatchResult is the output of BatchCDR: sorted pair relations plus
	// aggregated instrumentation.
	BatchResult = core.BatchResult
	// BatchPctResult is the output of BatchPct: sorted percent matrices
	// plus aggregated instrumentation.
	BatchPctResult = core.BatchPctResult
	// Arena is a bump allocator backing Prepared construction: one large
	// slab per world instead of per-region allocations. An Arena is never
	// freed piecemeal; drop the whole arena (and every Prepared carved
	// from it) together.
	Arena = core.Arena
	// RelationStore holds prepared regions plus cached all-pairs relation
	// (and optionally percent) results, recomputing only the touched row
	// and column on each region edit.
	RelationStore = core.RelationStore
	// StoreOptions tunes a RelationStore (worker count, percent caching).
	StoreOptions = core.StoreOptions
	// LoDWorld is the huge-world tier over a prepared region set: a
	// coarse-tile relation summary answering clearly-single-tile pairs
	// O(1), per-region level-of-detail geometry (strip indexes and
	// error-bounded simplifications) for the rest, and the exact kernel
	// as the fallback. Every answer is bit-identical to the exact kernel.
	LoDWorld = core.LoDWorld
	// LoDOptions tunes LoDWorld construction (coarse grid resolution,
	// simplification tolerances).
	LoDOptions = core.LoDOptions
	// CoarseIndex is the standalone coarse-tile summary: bounding boxes
	// quantised to a cell grid, O(1) single-tile pair answers and planner
	// selectivity estimates.
	CoarseIndex = core.CoarseIndex
	// BulkRegion is one entry of a streamed bulk ingest into a tracked
	// configuration (Tracked.BulkAddRegions): the whole batch lands as
	// one edit with a single batched recomputation.
	BulkRegion = config.BulkRegion
	// Tracked binds a configuration document to a maintained RelationStore
	// and live R-tree: document edits drive store and index deltas.
	Tracked = config.Tracked
	// LiveIndex is an R-tree kept in sync under region edits
	// (add/remove/rename/geometry change).
	LiveIndex = index.Live
)

var (
	// NewAccumulator prepares a streaming computation against a reference box.
	NewAccumulator = core.NewAccumulator
	// BatchCDR is the consolidated all-pairs batch entry point: every
	// ordered pair's qualitative relation under a context, with options for
	// worker count, pruning and pre-prepared regions.
	BatchCDR = core.BatchCDR
	// BatchPct is the quantitative counterpart of BatchCDR: every ordered
	// pair's percent matrix under a context.
	BatchPct = core.BatchPct
	// Prepare preprocesses one region for repeated Relate calls.
	Prepare = core.Prepare
	// PrepareAll preprocesses a named batch, validating names. The batch
	// shares one arena internally; see PrepareAllIn to supply it.
	PrepareAll = core.PrepareAll
	// PrepareAllIn is PrepareAll drawing backing storage from an explicit
	// arena (nil falls back to per-region allocations).
	PrepareAllIn = core.PrepareAllIn
	// NewArena creates an empty arena for PrepareAllIn.
	NewArena = core.NewArena
	// Relate computes the relation between two prepared regions.
	Relate = core.Relate
	// RelatePct computes the relation with percentages between two prepared
	// regions; with a warmed Scratch the steady path is allocation-free.
	RelatePct = core.RelatePct
	// FindRelated filters candidates by their relation to a reference,
	// pruning through R-tree window queries derived from the allowed tiles.
	FindRelated = index.FindRelated
	// FindRelatedParallel is FindRelated on a worker pool, with identical
	// output.
	FindRelatedParallel = core.FindRelatedParallel
	// FindRelatedCtx is the context-aware candidate filter behind the
	// directional-selection endpoints.
	FindRelatedCtx = core.FindRelatedCtx
	// ErrDegenerateRegion reports a region unusable by the algorithms
	// (empty, or with no edges); matched with errors.Is.
	ErrDegenerateRegion = core.ErrDegenerateRegion
	// NewRelationStore builds a store over named regions, computing the
	// initial all-pairs matrix through the batch engine.
	NewRelationStore = core.NewRelationStore
	// ErrUnknownRegion reports a store operation naming a region the store
	// does not hold; matched with errors.Is.
	ErrUnknownRegion = core.ErrUnknownRegion
	// ErrUnknownConfigRegion is the configuration-layer counterpart for
	// Image edit methods; it wraps ErrUnknownRegion, so one errors.Is
	// check covers both layers.
	ErrUnknownConfigRegion = config.ErrUnknownRegion
	// ErrDuplicateRegion reports an Image edit reusing an existing region
	// id; matched with errors.Is.
	ErrDuplicateRegion = config.ErrDuplicateRegion
	// Track binds a configuration to a maintained RelationStore and live
	// index; subsequent Image edits update both incrementally.
	Track = config.Track
	// TrackSeeded is Track for documents whose materialised relations are
	// trusted (snapshots the store itself wrote): the relation store is
	// seeded from them instead of recomputing all pairs.
	TrackSeeded = config.TrackSeeded
	// NewLiveIndex builds a maintained R-tree over named regions.
	NewLiveIndex = index.NewLive
	// PrepareLoDWorld builds the huge-world tier over a named region set:
	// packed grids and centers, a coarse-tile summary, and lazy per-region
	// LoD geometry. Answers through LoDWorld.Relation / BatchRows are
	// bit-identical to the exact kernel (fuzzed: FuzzLoDDifferential).
	PrepareLoDWorld = core.PrepareLoDWorld
	// NewCoarseIndex summarises bounding boxes on a cell grid for O(1)
	// single-tile pair answers and planner selectivity probes.
	NewCoarseIndex = core.NewCoarseIndex
	// SimplifyPolygon is anchored Douglas–Peucker simplification with a
	// hard two-sided Hausdorff bound eps and the bounding box preserved
	// exactly (extreme vertices are anchored).
	SimplifyPolygon = geom.SimplifyPolygon
	// SimplifyRegion applies SimplifyPolygon to each polygon of a region;
	// the guarantees are per-polygon.
	SimplifyRegion = geom.SimplifyRegion
)

// Durable persistence (write-ahead log + snapshots + crash recovery).
type (
	// PersistStore owns a data directory — snapshot XML plus write-ahead
	// log — and the tracked configuration recovered from it; edits routed
	// through it are logged before they are acknowledged.
	PersistStore = persist.Store
	// PersistOptions configures OpenPersist (fsync policy, workers, pct).
	PersistOptions = persist.Options
	// PersistStatus reports the durability counters of a PersistStore.
	PersistStatus = persist.Status
	// SnapshotInfo describes one snapshot rotation.
	SnapshotInfo = persist.SnapshotInfo
	// WALOptions selects the log's fsync discipline.
	WALOptions = wal.Options
	// SyncPolicy is the fsync policy of the write-ahead log.
	SyncPolicy = wal.SyncPolicy
)

// Write-ahead log fsync policies.
const (
	// SyncAlways fsyncs after every record: an acknowledged edit is on
	// stable storage.
	SyncAlways = wal.SyncAlways
	// SyncInterval fsyncs on a timer: bounded data loss, higher throughput.
	SyncInterval = wal.SyncInterval
	// SyncNever leaves flushing to the OS.
	SyncNever = wal.SyncNever
)

var (
	// OpenPersist recovers a durable store from a data directory (or
	// initialises it from a seed configuration).
	OpenPersist = persist.Open
	// ParseSyncPolicy parses "always", "interval" or "never".
	ParseSyncPolicy = wal.ParseSyncPolicy
	// ErrEmptyWorld reports a snapshot attempt on a configuration with no
	// regions; matched with errors.Is.
	ErrEmptyWorld = persist.ErrEmptyWorld
)

// Geometry interchange and construction helpers.
var (
	// ParseWKT reads POLYGON/MULTIPOLYGON Well-Known Text into a Region,
	// decomposing holes into the paper's REG* representation.
	ParseWKT = geom.ParseWKT
	// FormatWKT renders a Region as MULTIPOLYGON Well-Known Text.
	FormatWKT = geom.FormatWKT
	// DecomposeWithHoles converts outer-ring-plus-holes into REG*.
	DecomposeWithHoles = geom.DecomposeWithHoles
	// ParseGeoJSON reads a GeoJSON Polygon/MultiPolygon into a Region.
	ParseGeoJSON = geom.ParseGeoJSON
	// FormatGeoJSON renders a Region as a GeoJSON MultiPolygon.
	FormatGeoJSON = geom.FormatGeoJSON
	// ConvexHull computes the convex hull of points.
	ConvexHull = geom.ConvexHull
	// HullOfRegion computes the convex hull of a region's vertices.
	HullOfRegion = geom.HullOfRegion
)

// Spatial indexing (the R-tree substrate of the paper's reference [13]).
type (
	// RTree is an in-memory R-tree over bounding boxes.
	RTree = index.RTree
	// IndexItem is one indexed box with an identifier.
	IndexItem = index.Item
	// SelectStats instruments one directional selection: candidates
	// visited by the window queries versus the index size.
	SelectStats = index.SelectStats
)

var (
	// NewRTree returns an empty R-tree.
	NewRTree = index.New
	// BulkLoadRTree packs items with sort-tile-recursive loading.
	BulkLoadRTree = index.BulkLoad
	// DirectionalSelect finds regions matching a relation set against a
	// reference, pruning candidates with one R-tree window query per
	// constraint tile before MBB and exact refinement.
	DirectionalSelect = index.DirectionalSelect
	// DirectionalSelectStats is DirectionalSelect with instrumentation.
	DirectionalSelectStats = index.DirectionalSelectStats
)

// Topological and distance relations (the paper's §5 future-work item 2:
// "combining topological [2] and distance relations [3]" with directions).
type (
	// RCC8 is a Region Connection Calculus base relation.
	RCC8 = topo.RCC8
	// QualitativeDistance is a Frank-style distance class.
	QualitativeDistance = topo.Distance
)

// RCC8 base relation constants.
const (
	RccDC    = topo.DC
	RccEC    = topo.EC
	RccPO    = topo.PO
	RccEQ    = topo.EQ
	RccTPP   = topo.TPP
	RccNTPP  = topo.NTPP
	RccTPPi  = topo.TPPi
	RccNTPPi = topo.NTPPi
)

var (
	// IntersectionArea computes the exact overlay area of two regions.
	IntersectionArea = topo.IntersectionArea
	// BoundariesTouch tests boundary contact between two regions.
	BoundariesTouch = topo.BoundariesTouch
	// ClassifyRCC8 determines the topological relation of two regions.
	ClassifyRCC8 = topo.Classify
	// MinDistance is the minimum Euclidean distance between two regions.
	MinDistance = topo.MinDistance
	// ClassifyDistance quantises MinDistance against the reference's scale.
	ClassifyDistance = topo.ClassifyDistance
)
