package cardirect

import (
	"math"
	"strings"
	"testing"
)

// TestFacadeQuickstart exercises the README's quick-start snippet.
func TestFacadeQuickstart(t *testing.T) {
	a := BoxRegion(12, 2, 14, 10)
	b := BoxRegion(0, 0, 10, 6)
	rel, err := ComputeCDR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rel != Rel(TileNE, TileE) {
		t.Errorf("relation = %v, want NE:E", rel)
	}
	m, areas, err := ComputeCDRPct(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Get(TileNE)-50) > 1e-9 || math.Abs(m.Get(TileE)-50) > 1e-9 {
		t.Errorf("matrix = %v", m)
	}
	if math.Abs(areas.Total()-a.Area()) > 1e-9 {
		t.Errorf("total area = %v", areas.Total())
	}
}

func TestFacadeClippingAgrees(t *testing.T) {
	g := NewGenerator(7)
	for _, p := range g.Pairs(25, 9) {
		want, err := ComputeCDR(p.A, p.B)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ClipComputeCDR(p.A, p.B)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("clip %v != core %v", got, want)
		}
	}
}

func TestFacadeReasoning(t *testing.T) {
	if !Inverse(S).Contains(N) {
		t.Error("inv(S) misses N")
	}
	if !Composition(SW, SW).Contains(SW) {
		t.Error("SW∘SW misses SW")
	}
	n := NewNetwork()
	n.ConstrainRel("a", "b", N)
	n.ConstrainRel("b", "a", S)
	w, err := n.Solve(SolveOptions{})
	if err != nil || w == nil {
		t.Fatalf("consistent network rejected: %v, %v", w, err)
	}
}

func TestFacadeConfigAndQuery(t *testing.T) {
	img := Greece()
	var sb strings.Builder
	if err := SaveImage(img, &sb); err != nil {
		t.Fatal(err)
	}
	back, err := ParseImage([]byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(back)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.EvalString("q(a, b) :- color(a) = red, color(b) = blue, a S:SW:W:NW:N:NE:E:SE b")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0]["b"] != "pylos" {
		t.Errorf("paper query = %v", got)
	}
}

func TestFacadeBaselines(t *testing.T) {
	a := BoxRegion(20, 3, 22, 5)
	b := BoxRegion(0, 0, 10, 6)
	if d := CentroidCone(a, b, 0); d.Tile() != TileE {
		t.Errorf("cone = %v", d)
	}
	r, err := MBBRelation(a, b)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := ComputeCDR(a, b)
	if CompareMBB(r, exact).String() != "exact" {
		t.Errorf("MBB on boxes should be exact: %v vs %v", r, exact)
	}
}

func TestFacadeParsers(t *testing.T) {
	r, err := ParseRelation("B:S:SW")
	if err != nil || r.NumTiles() != 3 {
		t.Fatalf("ParseRelation: %v, %v", r, err)
	}
	s, err := ParseRelationSet("{N, NW:N}")
	if err != nil || s.Len() != 2 {
		t.Fatalf("ParseRelationSet: %v, %v", s, err)
	}
	q, err := ParseQuery("q(x) :- color(x) = blue")
	if err != nil || len(q.Vars) != 1 {
		t.Fatalf("ParseQuery: %v, %v", q, err)
	}
	if len(AllRelations()) != 511 || UniverseSet().Len() != 511 {
		t.Error("D* cardinality wrong")
	}
}

func TestFacadeWKTAndDecompose(t *testing.T) {
	r, err := ParseWKT("POLYGON ((0 0, 0 4, 4 4, 4 0), (1 1, 1 3, 3 3, 3 1))")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Area()-12) > 1e-9 {
		t.Errorf("area = %v", r.Area())
	}
	back, err := ParseWKT(FormatWKT(r))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(back.Area()-r.Area()) > 1e-9 {
		t.Error("WKT roundtrip changed area")
	}
	hull := HullOfRegion(r)
	if hull == nil || hull.Area() != 16 {
		t.Errorf("hull = %v", hull)
	}
	// A decomposed region works as a primary region.
	ref := BoxRegion(10, 0, 14, 4)
	if _, err := ComputeCDR(r, ref); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeStreaming(t *testing.T) {
	ref := BoxRegion(0, 0, 10, 6)
	ac, err := NewAccumulator(ref.BoundingBox())
	if err != nil {
		t.Fatal(err)
	}
	if err := ac.AddRegion(BoxRegion(12, 2, 14, 10)); err != nil {
		t.Fatal(err)
	}
	rel, err := ac.Relation()
	if err != nil {
		t.Fatal(err)
	}
	if rel != Rel(TileNE, TileE) {
		t.Errorf("streamed relation = %v", rel)
	}
}

func TestFacadeBatchAndIndex(t *testing.T) {
	regions := []NamedRegion{
		{Name: "ref", Region: BoxRegion(0, 0, 10, 6)},
		{Name: "sw", Region: BoxRegion(-5, -5, -1, -1)},
		{Name: "ne", Region: BoxRegion(12, 8, 14, 10)},
	}
	pairs, err := ComputeAllPairs(regions)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 6 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	items := make([]IndexItem, 0, len(regions))
	geoms := map[string]Region{}
	for _, r := range regions {
		items = append(items, IndexItem{Box: r.Region.BoundingBox(), ID: r.Name})
		geoms[r.Name] = r.Region
	}
	tree, err := BulkLoadRTree(items)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DirectionalSelect(tree, geoms, geoms["ref"], NewRelationSet(SW))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "sw" {
		t.Errorf("DirectionalSelect = %v", got)
	}
}

func TestFacadeEntail(t *testing.T) {
	n := NewNetwork()
	n.ConstrainRel("a", "b", SW)
	n.ConstrainRel("b", "c", SW)
	got, err := n.Entail("a", "c")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Contains(SW) {
		t.Errorf("Entail = %v", got)
	}
}

func TestFacadeTopo(t *testing.T) {
	a := BoxRegion(0, 0, 4, 4)
	b := BoxRegion(2, 2, 6, 6)
	if got := ClassifyRCC8(a, b, 0); got != RccPO {
		t.Errorf("RCC8 = %v, want PO", got)
	}
	if got := IntersectionArea(a, b); math.Abs(got-4) > 1e-9 {
		t.Errorf("overlay area = %v, want 4", got)
	}
	far := BoxRegion(100, 0, 102, 2)
	if got := ClassifyRCC8(a, far, 0); got != RccDC {
		t.Errorf("RCC8 = %v, want DC", got)
	}
	if got := ClassifyDistance(far, a); got != 4 { // DistFar
		t.Errorf("distance class = %v, want far", got)
	}
	if !BoundariesTouch(a, BoxRegion(4, 0, 6, 4)) {
		t.Error("edge-sharing boxes should touch")
	}
	if got := MinDistance(a, far); math.Abs(got-96) > 1e-9 {
		t.Errorf("MinDistance = %v, want 96", got)
	}
}
