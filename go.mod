module cardirect

go 1.22
