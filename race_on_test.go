//go:build race

package cardirect

// raceEnabled reports whether the race detector instruments this build.
// Timing thresholds are relaxed when it does: the instrumentation taxes
// the tight accumulation loops far more than the naive per-pair
// allocations, so absolute speedup factors are not meaningful under -race.
const raceEnabled = true
