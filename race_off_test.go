//go:build !race

package cardirect

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
