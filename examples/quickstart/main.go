// Quickstart: compute the cardinal direction relation between two regions —
// the Fig. 1c example of the paper, where region c is 50% northeast and 50%
// east of region b.
package main

import (
	"fmt"
	"log"

	"cardirect"
)

func main() {
	// The reference region b: its bounding box spans [0,10]×[0,6] and
	// induces the nine tiles B, S, SW, W, NW, N, NE, E, SE.
	b := cardirect.BoxRegion(0, 0, 10, 6)

	// The primary region c straddles the NE and E tiles of b.
	c := cardirect.BoxRegion(12, 2, 14, 10)

	// Qualitative relation (Algorithm Compute-CDR).
	rel, err := cardirect.ComputeCDR(c, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("c %v b\n\n", rel)
	fmt.Println("direction relation matrix:")
	fmt.Println(rel.MatrixString())

	// Quantitative relation (Algorithm Compute-CDR%).
	m, areas, err := cardirect.ComputeCDRPct(c, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncardinal direction matrix with percentages:")
	fmt.Println(m)
	fmt.Printf("\ntotal area accounted for: %.1f (region area %.1f)\n",
		areas.Total(), c.Area())

	// Regions can be disconnected and carry holes (class REG*): a region of
	// two islands.
	islands := cardirect.Rgn(
		cardirect.Box(-4, -4, -1, -1),
		cardirect.Box(12, 8, 15, 11),
	)
	rel2, err := cardirect.ComputeCDR(islands, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nislands %v b (a disconnected primary region)\n", rel2)
}
