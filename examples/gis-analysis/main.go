// GIS analysis: a synthetic land-cover map analysed with the full pipeline —
// generate country-like regions (mainland, islands, enclave holes), compute
// all pairwise relations with percentages, aggregate directional statistics,
// and contrast the exact model with the MBB approximation the paper
// improves upon.
package main

import (
	"fmt"
	"log"

	"cardirect"
)

func main() {
	gen := cardirect.NewGenerator(42)

	// A 3×3 grid of country-like regions, each a mainland with a hole plus
	// islands — exactly the REG* shapes §2 motivates ("countries are made
	// up of separations … and holes").
	names := []string{
		"arden", "borea", "cyrene",
		"doria", "elysia", "pharos",
		"galene", "hesper", "ithaca",
	}
	regions := map[string]cardirect.Region{}
	for i, name := range names {
		cx := float64(i%3) * 40
		cy := float64(i/3) * 40
		regions[name] = gen.Country(cx, cy, 18, 20+2*i, 4)
	}

	// All pairwise qualitative relations.
	fmt.Println("pairwise relations (primary rows, reference columns):")
	fmt.Printf("%-8s", "")
	for _, ref := range names {
		fmt.Printf("%-10s", ref[:4])
	}
	fmt.Println()
	multiTile := 0
	for _, p := range names {
		fmt.Printf("%-8s", p)
		for _, ref := range names {
			if p == ref {
				fmt.Printf("%-10s", "—")
				continue
			}
			rel, err := cardirect.ComputeCDR(regions[p], regions[ref])
			if err != nil {
				log.Fatal(err)
			}
			if rel.MultiTile() {
				multiTile++
			}
			fmt.Printf("%-10s", rel)
		}
		fmt.Println()
	}
	fmt.Printf("\n%d of %d ordered pairs need a multi-tile relation — the\n",
		multiTile, len(names)*(len(names)-1))
	fmt.Println("expressiveness the point/MBB models of prior work cannot provide.")

	// Quantitative drill-down on one neighbouring pair.
	m, _, err := cardirect.ComputeCDRPct(regions["elysia"], regions["arden"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nelysia w.r.t. arden, with percentages:\n%v\n", m)

	// Exact model vs the MBB approximation.
	exactCount, subsumed := 0, 0
	for _, p := range names {
		for _, ref := range names {
			if p == ref {
				continue
			}
			exact, err := cardirect.ComputeCDR(regions[p], regions[ref])
			if err != nil {
				log.Fatal(err)
			}
			approx, err := cardirect.MBBRelation(regions[p], regions[ref])
			if err != nil {
				log.Fatal(err)
			}
			switch cardirect.CompareMBB(approx, exact) {
			case 0: // exact
				exactCount++
			case 1: // subsumed
				subsumed++
			}
		}
	}
	fmt.Printf("\nMBB approximation: exact on %d pairs, loses information on %d\n",
		exactCount, subsumed)
}
