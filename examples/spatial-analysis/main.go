// Spatial analysis: the paper's future-work vision in one pipeline —
// regions imported from WKT (holes decomposed into REG* automatically),
// indexed in an R-tree, selected by cardinal direction with MBB pruning,
// and described with all three qualitative vocabularies: direction,
// topology (RCC-8) and distance.
package main

import (
	"fmt"
	"log"

	"cardirect"
)

func main() {
	// A small land-cover scene in WKT, as it would arrive from a GIS.
	// The nature reserve has an enclave (a private estate) — a polygon
	// with a hole, decomposed into hole-free REG* polygons on import.
	wkt := map[string]string{
		"reserve": "POLYGON ((10 10, 10 50, 50 50, 50 10), (25 25, 25 35, 35 35, 35 25))",
		"estate":  "POLYGON ((27 27, 27 33, 33 33, 33 27))",
		"lake":    "POLYGON ((60 20, 60 40, 80 40, 80 20))",
		"village": "MULTIPOLYGON (((62 50, 62 58, 70 58, 70 50)), ((74 52, 78 52, 78 56, 74 56)))",
		"mill":    "POLYGON ((86 28, 86 32, 90 32, 90 28))",
	}
	regions := map[string]cardirect.Region{}
	var items []cardirect.IndexItem
	for id, w := range wkt {
		r, err := cardirect.ParseWKT(w)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		regions[id] = r
		items = append(items, cardirect.IndexItem{Box: r.BoundingBox(), ID: id})
	}
	fmt.Printf("imported %d regions; reserve decomposed into %d hole-free polygons\n\n",
		len(regions), len(regions["reserve"]))

	// Index and run a directional selection: everything east-ish of the
	// reserve, via the R-tree plan.
	tree, err := cardirect.BulkLoadRTree(items)
	if err != nil {
		log.Fatal(err)
	}
	eastish := cardirect.NewRelationSet(
		cardirect.E, cardirect.NE, cardirect.SE,
		cardirect.Rel(cardirect.TileNE, cardirect.TileE),
		cardirect.Rel(cardirect.TileE, cardirect.TileSE),
		cardirect.Rel(cardirect.TileNE, cardirect.TileE, cardirect.TileSE),
	)
	hits, err := cardirect.DirectionalSelect(tree, regions, regions["reserve"], eastish)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("east-ish of the reserve: %v\n\n", hits)

	// Full qualitative description of selected pairs.
	fmt.Printf("%-9s %-9s %-12s %-6s %-11s %s\n",
		"primary", "reference", "direction", "RCC-8", "distance", "pct matrix row of dominant tile")
	pairs := [][2]string{
		{"estate", "reserve"},
		{"lake", "reserve"},
		{"village", "lake"},
		{"mill", "lake"},
		{"reserve", "lake"},
	}
	for _, pr := range pairs {
		a, b := regions[pr[0]], regions[pr[1]]
		dir, err := cardirect.ComputeCDR(a, b)
		if err != nil {
			log.Fatal(err)
		}
		m, _, err := cardirect.ComputeCDRPct(a, b)
		if err != nil {
			log.Fatal(err)
		}
		// Dominant tile share.
		best, bestPct := cardirect.TileB, 0.0
		for _, tile := range []cardirect.Tile{
			cardirect.TileB, cardirect.TileS, cardirect.TileSW, cardirect.TileW,
			cardirect.TileNW, cardirect.TileN, cardirect.TileNE, cardirect.TileE, cardirect.TileSE,
		} {
			if p := m.Get(tile); p > bestPct {
				best, bestPct = tile, p
			}
		}
		fmt.Printf("%-9s %-9s %-12v %-6v %-11v %v=%.0f%%\n",
			pr[0], pr[1], dir,
			cardirect.ClassifyRCC8(a, b, 0),
			cardirect.ClassifyDistance(a, b),
			best, bestPct)
	}

	// The estate sits in the reserve's hole: direction says B (inside the
	// box), topology says DC (no shared material) — the combination
	// distinguishes "inside the bounding box" from "inside the region",
	// which no single vocabulary can.
	fmt.Println("\nnote: estate is B of reserve yet topologically DC — it sits in the enclave hole.")
}
