// Peloponnesian: the paper's §4 walkthrough on the Fig. 11 map of Hellas —
// annotate regions, compute both kinds of relations, persist the
// configuration as CARDIRECT XML, and answer the paper's example query
// ("find the regions of one alliance surrounded by a region of the other").
package main

import (
	"fmt"
	"log"
	"os"

	"cardirect"
)

func main() {
	img := cardirect.Greece()

	// Compute all pairwise relations (with percentages) and persist.
	if err := img.ComputeRelations(true); err != nil {
		log.Fatal(err)
	}
	f, err := os.CreateTemp("", "hellas-*.xml")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	if err := cardirect.SaveImage(img, f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("configuration saved to %s\n\n", f.Name())

	// Reload the persisted document — the XML interface of CARDIRECT.
	g, err := os.Open(f.Name())
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	back, err := cardirect.LoadImage(g)
	if err != nil {
		log.Fatal(err)
	}

	// Fig. 12: Peloponnesos vs Attica.
	rel, _ := back.RelationBetween("peloponnesos", "attica")
	fmt.Printf("Peloponnesos is %s of Attica (paper: B:S:SW:W)\n", rel.Type)
	inv, _ := back.RelationBetween("attica", "peloponnesos")
	m, err := cardirect.ParsePct(inv.Pct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAttica is, of Peloponnesos:\n%v\n", m)

	// The paper's query: regions of the Athenean Alliance (blue) surrounded
	// by a region of the Spartan Alliance (red).
	ev, err := cardirect.NewEvaluator(back)
	if err != nil {
		log.Fatal(err)
	}
	q := "q(a, b) :- color(a) = red, color(b) = blue, a S:SW:W:NW:N:NE:E:SE b"
	answers, err := ev.EvalString(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", q)
	for _, ans := range answers {
		fmt.Printf("  %s surrounds %s\n",
			back.FindRegion(ans["a"]).Name, back.FindRegion(ans["b"]).Name)
	}

	// A second query: everything north of Attica, any alliance.
	q2 := "q(x, y) :- y = attica, x {N, NW:N, N:NE, NW:N:NE, NW, NE} y"
	north, err := ev.EvalString(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", q2)
	for _, ans := range north {
		r := back.FindRegion(ans["x"])
		fmt.Printf("  %s (%s)\n", r.Name, r.Color)
	}
}
