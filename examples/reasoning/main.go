// Reasoning: the "handling" side of cardinal direction information —
// inverting relations, composing them along chains, and deciding the
// consistency of constraint networks, with a concrete witness map for the
// consistent ones.
package main

import (
	"fmt"
	"log"

	"cardirect"
)

func main() {
	// Inverse: if a is S of b, where can b be relative to a? For REG*
	// regions the answer includes the disconnected NW:NE case.
	fmt.Printf("inv(S)    = %v\n", cardirect.Inverse(cardirect.S))
	bw, err := cardirect.ParseRelation("B:W")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inv(B:W)  = %v\n", cardirect.Inverse(bw))

	// Composition: a SW b and b SW c pin a to SW of c; a N b and b S c
	// leave the whole middle column open.
	fmt.Printf("\nSW ∘ SW   = %v\n", cardirect.Composition(cardirect.SW, cardirect.SW))
	fmt.Printf("N ∘ S     = %v\n", cardirect.Composition(cardirect.N, cardirect.S))

	// Consistency: a small siting problem. The depot must be north of the
	// plant, the plant north of the port, and the port… north of the depot?
	bad := cardirect.NewNetwork()
	bad.ConstrainRel("depot", "plant", cardirect.N)
	bad.ConstrainRel("plant", "port", cardirect.N)
	bad.ConstrainRel("port", "depot", cardirect.N)
	w, err := bad.Solve(cardirect.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncyclic 'north of' network consistent? %v\n", w != nil)

	// A satisfiable layout, with disjunctive information: the park is north
	// or north-east of the lake, the mall east of the lake, and the park
	// north-west of the mall. (Note that "park W mall" would be subtly
	// inconsistent instead: W pins the park's y-span inside the mall's,
	// which itself sits inside the lake's — contradicting "north of lake".
	// The solver catches exactly this kind of interaction.)
	good := cardirect.NewNetwork()
	ne := cardirect.NewRelationSet(cardirect.N, cardirect.NE)
	good.Constrain("park", "lake", ne)
	good.ConstrainRel("mall", "lake", cardirect.E)
	good.ConstrainRel("park", "mall", cardirect.NW)
	w, err = good.Solve(cardirect.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if w == nil {
		log.Fatal("expected a consistent layout")
	}
	fmt.Println("\nlayout network is consistent; a witness map:")
	for _, name := range []string{"lake", "park", "mall"} {
		r := w.Regions[name]
		fmt.Printf("  %-5s box %v, %d polygon(s)\n", name, r.BoundingBox(), len(r))
	}
	// The witness really satisfies the constraints — recheck with the
	// computation algorithm.
	rel, err := cardirect.ComputeCDR(w.Regions["park"], w.Regions["lake"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  recheck: park is %v of lake (allowed: %v)\n", rel, ne)
}
