package cardirect_test

import (
	"context"
	"reflect"
	"testing"

	"cardirect"
)

// TestDeprecatedAllPairsParity pins every deprecated ComputeAllPairs*
// wrapper to the consolidated BatchCDR/BatchPct answers: the old names are
// veneers over the same engine, so their output must stay identical until
// they are removed.
func TestDeprecatedAllPairsParity(t *testing.T) {
	gen := cardirect.NewGenerator(41)
	raw := gen.Scatter(9, 10)
	regions := make([]cardirect.NamedRegion, len(raw))
	for i, g := range raw {
		regions[i] = cardirect.NamedRegion{Name: string(rune('a' + i)), Region: g}
	}
	ctx := context.Background()

	want, err := cardirect.BatchCDR(ctx, regions, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantPct, err := cardirect.BatchPct(ctx, regions, nil)
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := cardirect.PrepareAll(regions)
	if err != nil {
		t.Fatal(err)
	}

	for name, got := range map[string]func() ([]cardirect.PairRelation, error){
		"ComputeAllPairs":         func() ([]cardirect.PairRelation, error) { return cardirect.ComputeAllPairs(regions) },
		"ComputeAllPairsParallel": func() ([]cardirect.PairRelation, error) { return cardirect.ComputeAllPairsParallel(regions) },
		"ComputeAllPairsOpt": func() ([]cardirect.PairRelation, error) {
			pairs, _, err := cardirect.ComputeAllPairsOpt(regions, cardirect.BatchOptions{})
			return pairs, err
		},
		"ComputeAllPairsPrepared": func() ([]cardirect.PairRelation, error) {
			pairs, _, err := cardirect.ComputeAllPairsPrepared(prepared, cardirect.BatchOptions{})
			return pairs, err
		},
	} {
		pairs, err := got()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(pairs, want.Pairs) {
			t.Errorf("%s diverged from BatchCDR", name)
		}
	}

	for name, got := range map[string]func() ([]cardirect.PairPercent, error){
		"ComputeAllPairsPct": func() ([]cardirect.PairPercent, error) { return cardirect.ComputeAllPairsPct(regions) },
		"ComputeAllPairsPctParallel": func() ([]cardirect.PairPercent, error) {
			return cardirect.ComputeAllPairsPctParallel(regions)
		},
		"ComputeAllPairsPctOpt": func() ([]cardirect.PairPercent, error) {
			pairs, _, err := cardirect.ComputeAllPairsPctOpt(regions, cardirect.BatchOptions{})
			return pairs, err
		},
		"ComputeAllPairsPctPrepared": func() ([]cardirect.PairPercent, error) {
			pairs, _, err := cardirect.ComputeAllPairsPctPrepared(prepared, cardirect.BatchOptions{})
			return pairs, err
		},
	} {
		pairs, err := got()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(pairs, wantPct.Pairs) {
			t.Errorf("%s diverged from BatchPct", name)
		}
	}
}
