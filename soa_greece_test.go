package cardirect

import (
	"reflect"
	"testing"
)

// TestFacadeSoAGreeceDifferential runs the paper's Fig. 11 Greece fixture
// through both batch engines with the struct-of-arrays kernels on and off
// and asserts bit-identical output — relations, absolute tile areas and
// percent matrices compared with exact float equality. The core package
// cannot import the fixture (internal/config imports core), so the Greece
// leg of the SoA differential lives here at the facade.
func TestFacadeSoAGreeceDifferential(t *testing.T) {
	img := Greece()
	regions := make([]NamedRegion, len(img.Regions))
	for i := range img.Regions {
		regions[i] = NamedRegion{Name: img.Regions[i].ID, Region: img.Regions[i].Geometry()}
	}
	for _, noPrune := range []bool{false, true} {
		qualSoA, err := BatchCDR(nil, regions, &BatchOptions{Workers: 1, NoPrune: noPrune})
		if err != nil {
			t.Fatal(err)
		}
		qualRef, err := BatchCDR(nil, regions, &BatchOptions{Workers: 1, NoPrune: noPrune, NoSoA: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(qualSoA.Pairs, qualRef.Pairs) {
			t.Errorf("noPrune=%v: qualitative pairs diverge on Greece", noPrune)
		}
		pctSoA, err := BatchPct(nil, regions, &BatchOptions{Workers: 1, NoPrune: noPrune})
		if err != nil {
			t.Fatal(err)
		}
		pctRef, err := BatchPct(nil, regions, &BatchOptions{Workers: 1, NoPrune: noPrune, NoSoA: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(pctSoA.Pairs) != len(pctRef.Pairs) {
			t.Fatalf("noPrune=%v: %d vs %d pct pairs", noPrune, len(pctSoA.Pairs), len(pctRef.Pairs))
		}
		for i := range pctSoA.Pairs {
			g, r := pctSoA.Pairs[i], pctRef.Pairs[i]
			if g.Areas != r.Areas || g.Matrix != r.Matrix {
				t.Errorf("noPrune=%v: %s vs %s not bit-identical", noPrune, g.Primary, g.Reference)
			}
		}
	}
}
