package cardirect

import "cardirect/internal/core"

// The pre-consolidation all-pairs entry points. Each is a thin veneer over
// the same batch engine behind BatchCDR/BatchPct and is kept only for
// source compatibility; deprecated_test.go pins their parity with the
// consolidated API.
var (
	// ComputeAllPairs computes every ordered pair's relation sequentially.
	//
	// Deprecated: use BatchCDR.
	ComputeAllPairs = core.ComputeAllPairs
	// ComputeAllPairsParallel is ComputeAllPairs on a worker pool sized to
	// GOMAXPROCS, with identical (deterministic) output.
	//
	// Deprecated: use BatchCDR.
	ComputeAllPairsParallel = core.ComputeAllPairsParallel
	// ComputeAllPairsOpt is the configurable batch engine; it also reports
	// instrumentation (edge counts, MBB prune hits).
	//
	// Deprecated: use BatchCDR.
	ComputeAllPairsOpt = core.ComputeAllPairsOpt
	// ComputeAllPairsPrepared runs the batch engine over already-prepared
	// regions.
	//
	// Deprecated: use BatchCDR with BatchOptions.Prepared.
	ComputeAllPairsPrepared = core.ComputeAllPairsPrepared
	// ComputeAllPairsPct computes every ordered pair's percent matrix
	// sequentially through the prepared engine.
	//
	// Deprecated: use BatchPct.
	ComputeAllPairsPct = core.ComputeAllPairsPct
	// ComputeAllPairsPctParallel is ComputeAllPairsPct on a GOMAXPROCS
	// worker pool, with identical (deterministic) output.
	//
	// Deprecated: use BatchPct.
	ComputeAllPairsPctParallel = core.ComputeAllPairsPctParallel
	// ComputeAllPairsPctOpt is the configurable quantitative batch engine;
	// it also reports instrumentation (fast-path hits, edge counts).
	//
	// Deprecated: use BatchPct.
	ComputeAllPairsPctOpt = core.ComputeAllPairsPctOpt
	// ComputeAllPairsPctPrepared runs the quantitative batch over
	// already-prepared regions.
	//
	// Deprecated: use BatchPct with BatchOptions.Prepared.
	ComputeAllPairsPctPrepared = core.ComputeAllPairsPctPrepared
)
